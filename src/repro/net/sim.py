"""Discrete-event simulation engine.

The TOSSIM substitute's core: a priority queue of timestamped events.
Everything above it (radio, routing, the deductive engine's phase
delays) schedules callbacks here.  Determinism: ties are broken by a
monotone sequence number, and all randomness flows from a single seeded
``random.Random`` owned by the simulator.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple

from ..obs import instrument as _inst
from ..obs import state as _obs


class Simulator:
    """A minimal deterministic discrete-event scheduler."""

    def __init__(self, seed: int = 0):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Deepest the event queue has ever been (telemetry + a cheap
        #: proxy for peak simulation memory).
        self.queue_hwm = 0

    @property
    def now(self) -> float:
        """Current global simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` time units (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when`` (>= now)."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, callback))
        if len(self._queue) > self.queue_hwm:
            self.queue_hwm = len(self._queue)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        inclusive: bool = True,
    ) -> int:
        """Process events in time order.

        Stops when the queue is empty, when the next event lies past
        ``until`` (the clock then advances to ``until``), or after
        ``max_events`` events (runaway guard).  Returns the number of
        events processed in this call.

        ``inclusive=False`` makes ``until`` a strict upper bound: only
        events with ``when < until`` run, and events at exactly
        ``until`` stay queued.  Conservative time-window
        synchronization (the sharded engine's lockstep epochs) needs
        half-open windows ``[T, T_end)`` so the same event is never
        processed by two consecutive windows.
        """
        processed = 0
        while self._queue:
            when, _seq, callback = self._queue[0]
            if until is not None and (when > until if inclusive else when >= until):
                break
            if max_events is not None and processed >= max_events:
                break
            heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
        if until is not None and self._now < until:
            self._now = until
        self.events_processed += processed
        if _obs.enabled:
            if processed:
                _inst.sim_events.inc(processed)
                _inst.sim_queue_hwm.set_max(self.queue_hwm)
            # Radio-event counts buffer during the hot loop; drain them
            # whenever the simulation hands control back.
            _inst.flush_counters()
        return processed

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the event queue completely (with a runaway guard)."""
        return self.run(max_events=max_events)

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def next_time(self) -> Optional[float]:
        """Timestamp of the earliest queued event (None when idle) —
        what a shard reports so the coordinator can pick the next
        conservative window bound."""
        return self._queue[0][0] if self._queue else None


class LocalClock:
    """A node's local clock: global time plus a fixed skew.

    Section IV assumes only that the *difference* between any two local
    clocks is bounded by tau_c; a fixed per-node offset drawn from
    [-tau_c/2, +tau_c/2] realizes exactly that bound.
    """

    def __init__(self, sim: Simulator, skew: float = 0.0):
        self._sim = sim
        self.skew = skew

    def now(self) -> float:
        """Local time at this node."""
        return self._sim.now + self.skew

    def to_global(self, local_time: float) -> float:
        return local_time - self.skew

    def __repr__(self) -> str:
        return f"LocalClock(skew={self.skew:+.4f})"
