"""Geographic hashing of derived tuples.

Derived tuples must be stored so that *identical* tuples land at the
same (or nearby) node — that is what turns a derived table into a set
and a derived stream (Section III-B: duplicates are detected at the
hashed location and are not re-generated).  Classic geographic hash
tables (GHT) hash a key to a position and store at the node nearest
that position; we do exactly that with a process-independent hash
(Python's builtin ``hash`` is salted, so md5 it is).

Failover (E20): with ``replicas=k > 1`` a key's *replica set* is its
k-nearest nodes (GHT's "perimeter refresh" stores at the home node's
perimeter; k-nearest is the point-topology analogue).  The *primary*
is the first live member in (distance, id) order — when the home node
dies, lookups fail over to the next-closest live replica and the key
stays readable, which is what lets PA ride out node churn.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from ..core.errors import NetworkError
from ..core.terms import Term
from .topology import Position, Topology

if TYPE_CHECKING:  # pragma: no cover
    from .radio import Radio


def stable_hash(data: str) -> int:
    """Deterministic 64-bit hash of a string (same across processes)."""
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class GeographicHash:
    """Hashes fact keys to storage nodes via positions."""

    def __init__(self, topology: Topology, replicas: int = 1):
        if replicas < 1:
            raise NetworkError(f"replicas {replicas} must be >= 1")
        if replicas > len(topology):
            raise NetworkError(
                f"replicas {replicas} exceeds network size {len(topology)}"
            )
        self.topology = topology
        self.replicas = replicas
        self._bbox = topology.bounding_box()
        # key -> home node.  GPA re-hashes the same fact keys on every
        # store/join/result pass; topologies are immutable, so the
        # mapping never changes and the md5 + nearest-node work is paid
        # once per distinct key.
        self._home_cache: Dict[str, int] = {}
        # key -> full replica set (k-nearest, by (distance, id)).
        self._replica_cache: Dict[str, Tuple[int, ...]] = {}

    def position_for(self, key: str) -> Position:
        """Map a key to a position inside the deployment bounding box."""
        x0, y0, x1, y1 = self._bbox
        h = stable_hash(key)
        fx = ((h >> 32) & 0xFFFFFFFF) / 0xFFFFFFFF
        fy = (h & 0xFFFFFFFF) / 0xFFFFFFFF
        return (x0 + fx * (x1 - x0), y0 + fy * (y1 - y0))

    def node_for_key(self, key: str) -> int:
        """The home node for a key: nearest node to the hashed position
        (memoized — the spatial index makes a miss O(1) expected, the
        cache makes a repeat free)."""
        home = self._home_cache.get(key)
        if home is None:
            home = self.topology.nearest_node(self.position_for(key))
            self._home_cache[key] = home
        return home

    def nodes_for_key(self, key: str) -> Tuple[int, ...]:
        """The key's replica set: its ``replicas``-nearest nodes in
        (distance, id) order, memoized.  Element 0 is the home node —
        ``nodes_for_key(k)[0] == node_for_key(k)`` always."""
        replica_set = self._replica_cache.get(key)
        if replica_set is None:
            replica_set = tuple(
                self.topology.nearest_nodes(self.position_for(key), self.replicas)
            )
            self._replica_cache[key] = replica_set
        return replica_set

    def primary_for_key(self, key: str, radio: "Radio") -> Optional[int]:
        """The first *live* member of the key's replica set (the node
        lookups and stores should address right now), or None when the
        whole set is dead."""
        for node in self.nodes_for_key(key):
            if radio.is_alive(node):
                return node
        return None

    def node_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> int:
        """Home node for a derived fact (predicate + ground arguments)."""
        return self.node_for_key(f"{predicate}/{args!r}")

    def key_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> str:
        """The GHT key a derived fact hashes under."""
        return f"{predicate}/{args!r}"

    def nodes_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> Tuple[int, ...]:
        """Replica set for a derived fact."""
        return self.nodes_for_key(self.key_for_fact(predicate, args))
