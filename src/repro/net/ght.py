"""Geographic hashing of derived tuples.

Derived tuples must be stored so that *identical* tuples land at the
same (or nearby) node — that is what turns a derived table into a set
and a derived stream (Section III-B: duplicates are detected at the
hashed location and are not re-generated).  Classic geographic hash
tables (GHT) hash a key to a position and store at the node nearest
that position; we do exactly that with a process-independent hash
(Python's builtin ``hash`` is salted, so md5 it is).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

from ..core.terms import Term
from .topology import Position, Topology


def stable_hash(data: str) -> int:
    """Deterministic 64-bit hash of a string (same across processes)."""
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class GeographicHash:
    """Hashes fact keys to storage nodes via positions."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._bbox = topology.bounding_box()
        # key -> home node.  GPA re-hashes the same fact keys on every
        # store/join/result pass; topologies are immutable, so the
        # mapping never changes and the md5 + nearest-node work is paid
        # once per distinct key.
        self._home_cache: Dict[str, int] = {}

    def position_for(self, key: str) -> Position:
        """Map a key to a position inside the deployment bounding box."""
        x0, y0, x1, y1 = self._bbox
        h = stable_hash(key)
        fx = ((h >> 32) & 0xFFFFFFFF) / 0xFFFFFFFF
        fy = (h & 0xFFFFFFFF) / 0xFFFFFFFF
        return (x0 + fx * (x1 - x0), y0 + fy * (y1 - y0))

    def node_for_key(self, key: str) -> int:
        """The home node for a key: nearest node to the hashed position
        (memoized — the spatial index makes a miss O(1) expected, the
        cache makes a repeat free)."""
        home = self._home_cache.get(key)
        if home is None:
            home = self.topology.nearest_node(self.position_for(key))
            self._home_cache[key] = home
        return home

    def node_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> int:
        """Home node for a derived fact (predicate + ground arguments)."""
        return self.node_for_key(f"{predicate}/{args!r}")
