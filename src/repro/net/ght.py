"""Geographic hashing of derived tuples.

Derived tuples must be stored so that *identical* tuples land at the
same (or nearby) node — that is what turns a derived table into a set
and a derived stream (Section III-B: duplicates are detected at the
hashed location and are not re-generated).  Classic geographic hash
tables (GHT) hash a key to a position and store at the node nearest
that position; we do exactly that with a process-independent hash
(Python's builtin ``hash`` is salted, so md5 it is).

Failover (E20): with ``replicas=k > 1`` a key's *replica set* is its
k-nearest nodes (GHT's "perimeter refresh" stores at the home node's
perimeter; k-nearest is the point-topology analogue).  The *primary*
is the first live member in (distance, id) order — when the home node
dies, lookups fail over to the next-closest live replica and the key
stays readable, which is what lets PA ride out node churn.

Serving extensions (E21):

* **placement overrides** — :meth:`GeographicHash.place` pins a key to
  an explicit home node, overriding the hash.  The adaptive placement
  loop of :mod:`repro.serve` uses this to migrate hot storage regions
  to cooler nodes; with no overrides installed every lookup takes the
  original hash path unchanged.
* **keyspace partitions** — :meth:`GeographicHash.partition` returns a
  tenant-scoped view whose keys are prefixed with the tenant id, so
  concurrent tenants never collide in the shared keyspace.  A *coarse*
  partition hashes per predicate instead of per fact, co-locating a
  tenant's whole result table in one storage region (cheap to gather,
  cheap to migrate as a unit).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from ..core.errors import NetworkError
from ..core.terms import Term
from .topology import Position, Topology

if TYPE_CHECKING:  # pragma: no cover
    from .radio import Radio


def stable_hash(data: str) -> int:
    """Deterministic 64-bit hash of a string (same across processes)."""
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class GeographicHash:
    """Hashes fact keys to storage nodes via positions."""

    def __init__(self, topology: Topology, replicas: int = 1):
        if replicas < 1:
            raise NetworkError(f"replicas {replicas} must be >= 1")
        if replicas > len(topology):
            raise NetworkError(
                f"replicas {replicas} exceeds network size {len(topology)}"
            )
        self.topology = topology
        self.replicas = replicas
        self._bbox = topology.bounding_box()
        # key -> home node.  GPA re-hashes the same fact keys on every
        # store/join/result pass; topologies are immutable, so the
        # mapping never changes and the md5 + nearest-node work is paid
        # once per distinct key.
        self._home_cache: Dict[str, int] = {}
        # key -> full replica set (k-nearest, by (distance, id)).
        self._replica_cache: Dict[str, Tuple[int, ...]] = {}
        # key -> pinned home node (adaptive placement).  Empty in every
        # non-serving run, so the hash path pays one truthiness check.
        self._overrides: Dict[str, int] = {}

    def position_for(self, key: str) -> Position:
        """Map a key to a position inside the deployment bounding box."""
        x0, y0, x1, y1 = self._bbox
        h = stable_hash(key)
        fx = ((h >> 32) & 0xFFFFFFFF) / 0xFFFFFFFF
        fy = (h & 0xFFFFFFFF) / 0xFFFFFFFF
        return (x0 + fx * (x1 - x0), y0 + fy * (y1 - y0))

    def node_for_key(self, key: str) -> int:
        """The home node for a key: nearest node to the hashed position
        (memoized — the spatial index makes a miss O(1) expected, the
        cache makes a repeat free).  A placement override pins the key
        to an explicit node instead."""
        if self._overrides:
            pinned = self._overrides.get(key)
            if pinned is not None:
                return pinned
        home = self._home_cache.get(key)
        if home is None:
            home = self.topology.nearest_node(self.position_for(key))
            self._home_cache[key] = home
        return home

    def nodes_for_key(self, key: str) -> Tuple[int, ...]:
        """The key's replica set: its ``replicas``-nearest nodes in
        (distance, id) order, memoized.  Element 0 is the home node —
        ``nodes_for_key(k)[0] == node_for_key(k)`` always.  For an
        overridden key the set is the pinned node plus the nodes
        nearest to *it* (replication stays local to the new home)."""
        if self._overrides and key in self._overrides:
            pinned = self._overrides[key]
            rest = [
                n for n in self.topology.nearest_nodes(
                    self.topology.position(pinned), self.replicas + 1
                )
                if n != pinned
            ]
            return (pinned, *rest[: self.replicas - 1])
        replica_set = self._replica_cache.get(key)
        if replica_set is None:
            replica_set = tuple(
                self.topology.nearest_nodes(self.position_for(key), self.replicas)
            )
            self._replica_cache[key] = replica_set
        return replica_set

    # -- adaptive placement (E21) ---------------------------------------

    def place(self, key: str, node_id: int) -> None:
        """Pin ``key``'s home to ``node_id``, overriding the hash.
        Moving the data stored under the key is the caller's job (see
        :meth:`repro.dist.gpa.GPAEngine.migrate_derived`)."""
        if node_id not in self.topology.positions:
            raise NetworkError(f"cannot place {key!r} at unknown node {node_id}")
        self._overrides[key] = node_id

    def unplace(self, key: str) -> None:
        """Drop a placement override (the key re-homes by hash)."""
        self._overrides.pop(key, None)

    def placement(self) -> Dict[str, int]:
        """A copy of the current key -> pinned-node override map."""
        return dict(self._overrides)

    def partition(self, tenant: str, coarse: bool = False) -> "GHTPartition":
        """A tenant-scoped view of this keyspace (keys prefixed with
        ``tenant``).  ``coarse=True`` hashes per predicate instead of
        per fact: the tenant's whole result table for one predicate
        lands in one storage region."""
        return GHTPartition(self, tenant, coarse=coarse)

    def primary_for_key(self, key: str, radio: "Radio") -> Optional[int]:
        """The first *live* member of the key's replica set (the node
        lookups and stores should address right now), or None when the
        whole set is dead."""
        for node in self.nodes_for_key(key):
            if radio.is_alive(node):
                return node
        return None

    def node_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> int:
        """Home node for a derived fact (predicate + ground arguments)."""
        return self.node_for_key(f"{predicate}/{args!r}")

    def key_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> str:
        """The GHT key a derived fact hashes under."""
        return f"{predicate}/{args!r}"

    def nodes_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> Tuple[int, ...]:
        """Replica set for a derived fact."""
        return self.nodes_for_key(self.key_for_fact(predicate, args))


class GHTPartition:
    """A tenant's slice of a shared :class:`GeographicHash`.

    Fact keys are prefixed with the tenant id, so two tenants deriving
    the same fact keep distinct homes and derivation state.  The
    partition exposes the same fact-level API as the base hash (and
    delegates key-level lookups to it), which lets
    :class:`~repro.dist.gpa.GPAEngine` use either interchangeably.

    ``coarse=True`` hashes ``tenant:predicate`` instead of
    ``tenant:predicate/args``: all facts of one result predicate share
    one storage region — the *tenant storage region* the adaptive
    placement loop migrates as a unit.
    """

    __slots__ = ("base", "tenant", "coarse")

    def __init__(self, base: GeographicHash, tenant: str, coarse: bool = False):
        self.base = base
        self.tenant = tenant
        self.coarse = coarse

    @property
    def replicas(self) -> int:
        return self.base.replicas

    @property
    def topology(self) -> Topology:
        return self.base.topology

    def key_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> str:
        if self.coarse:
            return f"{self.tenant}:{predicate}"
        return f"{self.tenant}:{predicate}/{args!r}"

    def region_key(self, predicate: str) -> str:
        """The coarse (per-predicate) region key, regardless of the
        partition's own granularity — what the placer pins."""
        return f"{self.tenant}:{predicate}"

    def node_for_key(self, key: str) -> int:
        return self.base.node_for_key(key)

    def nodes_for_key(self, key: str) -> Tuple[int, ...]:
        return self.base.nodes_for_key(key)

    def primary_for_key(self, key: str, radio: "Radio") -> Optional[int]:
        return self.base.primary_for_key(key, radio)

    def node_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> int:
        return self.base.node_for_key(self.key_for_fact(predicate, args))

    def nodes_for_fact(self, predicate: str, args: Tuple[Term, ...]) -> Tuple[int, ...]:
        return self.base.nodes_for_key(self.key_for_fact(predicate, args))

    def place(self, key: str, node_id: int) -> None:
        self.base.place(key, node_id)

    def unplace(self, key: str) -> None:
        self.base.unplace(key)
