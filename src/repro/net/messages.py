"""Network messages.

A message is a typed payload with a size estimate.  The byte-cost model
charges a fixed header plus a per-symbol cost for terms (constants,
variables, function symbols all count one symbol — matching how a real
implementation would serialize term trees).
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Bytes charged per message for headers (addresses, type, ids).
HEADER_BYTES = 8
#: Bytes charged per term symbol in a payload.
BYTES_PER_SYMBOL = 4

_msg_counter = itertools.count()


def set_msg_id_base(base: int) -> None:
    """Restart message-id allocation at ``base``.

    Sharded simulation workers carve the id space into disjoint ranges
    (``shard_id << 40``) so messages created in different worker
    processes can never collide on the transport dedup key
    ``(sender, msg_id)``.  Ids only need to be unique, never dense or
    comparable, so single-process code is unaffected by where the
    counter starts.
    """
    global _msg_counter
    _msg_counter = itertools.count(base)


class Message:
    """Base class for everything the radio carries.

    ``kind`` selects the receiving handler; ``dst`` is the final
    destination for routed messages (None for single-hop / flood);
    ``payload_symbols`` drives the byte-cost model; ``category`` names
    the phase the message belongs to ("storage", "join", "result",
    "control", ...) for metrics/tracing breakdowns.  Category is a
    property of the message itself, set at construction (the legacy
    ``category=`` keyword on the send paths has been removed).

    Slotted: large simulations hold hundreds of thousands of live
    message records, so the six hot fields live in ``__slots__``.
    ``__dict__`` stays in the slot list as a lazy escape hatch — ad-hoc
    attributes (test tags, telemetry timestamps) still work and only
    instances that actually use them allocate a dict.
    """

    __slots__ = ("kind", "dst", "payload_symbols", "category", "msg_id",
                 "hops", "__dict__")

    def __init__(
        self,
        kind: str,
        dst: Optional[int] = None,
        payload_symbols: int = 0,
        category: str = "data",
    ):
        self.kind = kind
        self.dst = dst
        self.payload_symbols = payload_symbols
        self.category = category
        self.msg_id = next(_msg_counter)
        self.hops = 0

    @property
    def size_bytes(self) -> int:
        return HEADER_BYTES + BYTES_PER_SYMBOL * self.payload_symbols

    def __repr__(self) -> str:
        return f"<{self.kind} #{self.msg_id} -> {self.dst}>"
