"""Reliable per-hop delivery: acks, retransmission, backoff, dedup.

The paper's correctness theorems (Theorems 1-3) assume bounded,
loss-free delivery; E7 shows join completeness collapsing once the
radio drops messages.  Real mote stacks (the TinyOS/TOSSIM substrate
the paper evaluates on) recover exactly this with link-layer
acknowledgments and retransmission.  This module restores the
bounded-delivery assumption — with a larger bound — on lossy links:

* every reliable frame is acknowledged by the receiver; the sender
  retransmits on ack timeout, with exponential backoff plus jitter and
  a bounded retry budget;
* the receiver suppresses duplicates keyed on ``(sender, msg_id)``, so
  a retransmitted tuple can never be delivered — and hence derived —
  twice (the set-of-derivations argument of Section IV-A assumes
  at-most-once delivery per hop);
* ack frames are real traffic: they pay radio energy, are themselves
  subject to loss and collisions, and respect the FIFO-link model
  (which is why a lost ack causes a retransmission the dedup layer
  then absorbs);
* a transfer that exhausts its retry budget reports ``gave_up``
  through the delivery-status callback, so upper layers (GPA phases)
  can observe incompleteness instead of silently missing results.

With reliability on, the worst-case hop latency is the full retry
horizon (all timeouts elapse, the last attempt flies); the radio's
``max_hop_delay`` reports that bound so tau_s / tau_j stay sound.
"""

from __future__ import annotations

import functools
import inspect
from collections import defaultdict
from typing import Callable, Dict, Optional, Set, Tuple, TYPE_CHECKING

from ..core.errors import NetworkError
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from .radio import Radio

#: Delivery-status callback: called once with 'delivered' or 'gave_up'.
#: Callbacks that accept a second positional parameter additionally
#: receive the give-up *reason* ('dead' — the next hop was down when the
#: retry budget ran out, 'budget' — the link was just too lossy,
#: 'no_route' — the routing layer found no live path); single-parameter
#: callbacks keep working unchanged.
StatusCallback = Callable[[str], None]

#: Give-up reasons (the second argument of reason-aware callbacks).
GIVE_UP_DEAD = "dead"
GIVE_UP_BUDGET = "budget"
GIVE_UP_NO_ROUTE = "no_route"


def _accepts_reason(callback) -> bool:
    """Whether a status callback takes a second positional parameter
    (the give-up reason).  Inspected only on the rare give-up path."""
    try:
        signature = inspect.signature(callback)
    except (TypeError, ValueError):
        return False
    positional = 0
    for param in signature.parameters.values():
        if param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD):
            positional += 1
        elif param.kind == param.VAR_POSITIONAL:
            return True
    return positional >= 2


def notify_gave_up(callback: Optional[StatusCallback], reason: str) -> None:
    """Report a terminal delivery failure through ``callback``, passing
    the reason along when the callback can take it."""
    if callback is None:
        return
    if _accepts_reason(callback):
        callback("gave_up", reason)
    else:
        callback("gave_up")

#: Message kind of link-layer acknowledgments.
ACK = "__ack__"


class AckMsg(Message):
    """A link-layer acknowledgment for one received frame.

    Sized at one payload symbol (12 bytes under the cost model —
    comparable to an 802.15.4 ack frame).
    """

    __slots__ = ("acked_src", "acked_msg_id")

    def __init__(self, acked_src: int, acked_msg_id: int):
        super().__init__(ACK, payload_symbols=1, category="ack")
        self.acked_src = acked_src
        self.acked_msg_id = acked_msg_id


class _Transfer:
    """In-flight reliable transfer state (one per un-acked frame)."""

    __slots__ = ("acked", "attempt", "timeout")

    def __init__(self, timeout: float):
        self.acked = False
        self.attempt = 0
        self.timeout = timeout


class TransportConfig:
    """Tuning knobs of the reliable layer.

    ``ack_timeout`` is the initial retransmission timeout; ``None``
    derives it from the radio's delay model (2.5x the one-hop bound:
    a round trip plus processing slack).  Each retry multiplies the
    timeout by ``backoff`` and adds up to ``timeout_jitter`` (a
    fraction) of random slack to desynchronize competing senders.
    ``max_retries`` bounds retransmissions per frame (attempts are
    ``1 + max_retries``).
    """

    def __init__(
        self,
        ack_timeout: Optional[float] = None,
        max_retries: int = 5,
        backoff: float = 2.0,
        timeout_jitter: float = 0.5,
    ):
        if max_retries < 0:
            raise NetworkError(f"max_retries {max_retries} out of range")
        if backoff < 1.0:
            raise NetworkError(f"backoff factor {backoff} must be >= 1")
        if not 0.0 <= timeout_jitter <= 1.0:
            raise NetworkError(f"timeout jitter {timeout_jitter} out of range")
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.timeout_jitter = timeout_jitter

    def resolve_timeout(self, max_flight: float) -> float:
        """The initial ack timeout, derived from the one-hop flight
        bound when not set explicitly."""
        if self.ack_timeout is not None:
            return self.ack_timeout
        return 2.5 * max_flight

    def retry_horizon(self, max_flight: float) -> float:
        """Worst-case sender-side wait: every timeout (with maximal
        jitter) elapses before the final attempt's frame flies."""
        timeout = self.resolve_timeout(max_flight)
        total = 0.0
        for _ in range(self.max_retries):
            total += timeout * (1.0 + self.timeout_jitter)
            timeout *= self.backoff
        return total


class ReliableTransport:
    """Per-hop ack/retransmit/dedup engine owned by a :class:`Radio`."""

    def __init__(self, radio: "Radio", config: TransportConfig):
        self.radio = radio
        self.config = config
        #: receiver node -> {(sender, msg_id)} frames already delivered.
        self._seen: Dict[int, Set[Tuple[int, int]]] = defaultdict(set)
        #: (src, dst, msg_id) -> in-flight transfer state.
        self._pending: Dict[Tuple[int, int, int], _Transfer] = {}

    def forget(self, node_id: int) -> None:
        """Drop ``node_id``'s volatile transport state (its reboot just
        lost it): transfers it originated stop retrying, and its
        receiver-side dedup memory is cleared — a retransmission that
        arrives after the reboot is delivered again (upper layers
        absorb the duplicate via derivation identity)."""
        for key in [k for k in self._pending if k[0] == node_id]:
            del self._pending[key]
        self._seen.pop(node_id, None)

    @property
    def initial_timeout(self) -> float:
        flight = self.radio.delay_base + self.radio.delay_jitter
        return self.config.resolve_timeout(flight)

    # -- sender side -----------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        message: Message,
        deliver: Callable[[Message], None],
        on_status: Optional[StatusCallback] = None,
    ) -> None:
        key = (src, dst, message.msg_id)
        self._pending[key] = _Transfer(self.initial_timeout)
        self._attempt(key, src, dst, message, deliver, on_status)

    def _attempt(self, key, src, dst, message, deliver, on_status) -> None:
        state = self._pending[key]
        state.attempt += 1
        attempt = state.attempt
        if attempt > 1:
            self.radio.metrics.record_retry()
            self.radio._emit("retry", src, dst, message, attempt=attempt)
        # Partials (not lambdas) throughout this state machine: pending
        # frames and retry timers live in the event queue, which shard
        # checkpoints pickle mid-run (see repro.net.checkpoint).
        self.radio._send_frame(
            src, dst, message,
            functools.partial(self._on_data, key, src, dst, deliver, on_status),
        )
        # Exponential backoff with jitter: the timeout for the *next*
        # attempt grows even if this one succeeds (the timer just
        # no-ops then).  The jitter draw goes through the radio's frame
        # RNG so it follows the same randomness discipline as the frame
        # itself (sequential by default, per-link-keyed when sharding).
        timeout = state.timeout * (
            1.0 + self.radio.frame_rng.uniform(
                src, dst, 0, self.config.timeout_jitter
            )
        )
        state.timeout *= self.config.backoff
        self.radio.sim.schedule(
            timeout,
            functools.partial(
                self._on_timeout, key, src, dst, message, deliver, on_status
            ),
        )

    def _on_timeout(self, key, src, dst, message, deliver, on_status) -> None:
        state = self._pending.get(key)
        if state is None:
            return  # already concluded
        if state.acked:
            del self._pending[key]
            return
        if not self.radio.is_alive(src):
            del self._pending[key]  # a dead sender retries nothing
            return
        if state.attempt >= 1 + self.config.max_retries:
            del self._pending[key]
            self.radio.metrics.record_retry_exhausted()
            # Why did the budget run out?  A dead receiver is a
            # topology fault the routing layer can repair around; a
            # merely lossy link is not.  Upper layers key their
            # failure detectors on this distinction.
            reason = (
                GIVE_UP_DEAD if not self.radio.is_alive(dst) else GIVE_UP_BUDGET
            )
            self.radio._emit(
                "give_up", src, dst, message, attempt=state.attempt,
                detail=reason,
            )
            notify_gave_up(on_status, reason)
            return
        self._attempt(key, src, dst, message, deliver, on_status)

    # -- receiver side ---------------------------------------------------

    def _on_data(self, key, src, dst, deliver, on_status, message) -> None:
        """A reliable frame physically arrived at ``dst``.  (``message``
        is last so the send path can bind everything else in a partial
        and let the radio supply the frame.)"""
        dedup_key = (src, message.msg_id)
        seen = self._seen[dst]
        fresh = dedup_key not in seen
        if fresh:
            seen.add(dedup_key)
        else:
            # Retransmission of an already-delivered frame (its ack was
            # lost): suppress, but re-ack so the sender can stop.
            self.radio.metrics.record_dup()
            self.radio._emit("dup", src, dst, message)
        ack = AckMsg(src, message.msg_id)
        self.radio._send_frame(
            dst, src, ack,
            functools.partial(self._on_ack, key, src, dst, message, on_status),
        )
        if fresh:
            deliver(message)

    def _on_ack(self, key, src, dst, message, on_status, _frame=None) -> None:
        """An ack physically arrived back at the original sender."""
        state = self._pending.get(key)
        if state is None or state.acked:
            return  # duplicate ack, or transfer already concluded
        state.acked = True
        self.radio.metrics.record_ack()
        self.radio._emit("ack", src, dst, message, attempt=state.attempt)
        if on_status is not None:
            on_status("delivered")
