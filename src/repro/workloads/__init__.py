"""Workload generators for examples and benchmarks."""

from .synthetic import ChurnWorkload, UniformStreamWorkload
from .tracking import TargetTrackingWorkload, signal_strength
from .trajectories import (
    TRAJECTORY_PROGRAM,
    TrajectoryWorkload,
    close_reports,
    parallel_paths,
    trajectory_registry,
)
from .vehicles import BattlefieldWorkload, Vehicle

__all__ = [
    "ChurnWorkload", "UniformStreamWorkload", "TargetTrackingWorkload",
    "signal_strength", "TRAJECTORY_PROGRAM",
    "TrajectoryWorkload", "close_reports", "parallel_paths",
    "trajectory_registry", "BattlefieldWorkload", "Vehicle",
]
