"""Leader-based target tracking (Section II-B's tracking discussion).

"In vehicle tracking [7, 36], arithmetic computations involve
estimating belief states, information utilities, and future target
location; the first two computations are local and can be embedded in
built-in functions, while the last computation requires the maximum
aggregate."

This workload provides exactly those pieces:

* a target moving through the field;
* per-epoch sensor readings whose *signal strength* decays with
  distance (the information utility — a local built-in computation);
* a `detect` rule filtering weak readings in-network;
* a max-aggregate leader election per epoch (the best-informed sensor
  leads) and the leader's position as the track estimate.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..net.topology import Topology

Reading = Tuple[float, int, str, tuple]  # (time, node, "reading", args)

#: The in-network part of the tracking program: filter weak readings.
TRACKING_PROGRAM_TEMPLATE = (
    "detect(N, L, S, E) :- reading(N, L, S, E), S >= {threshold}."
)


def signal_strength(distance: float, sensing_range: float) -> float:
    """Information utility of a reading: quadratic decay to zero at the
    sensing range (a stand-in for the belief-state computations the
    paper embeds in built-ins)."""
    if distance >= sensing_range:
        return 0.0
    return round((1.0 - distance / sensing_range) ** 2, 4)


class TargetTrackingWorkload:
    """A target on a straight path; sensors within range report."""

    def __init__(
        self,
        topology: Topology,
        epochs: int = 5,
        sensing_range: float = 2.5,
        threshold: float = 0.05,
        speed: float = 1.0,
        seed: int = 0,
    ):
        self.topology = topology
        self.epochs = epochs
        self.sensing_range = sensing_range
        self.threshold = threshold
        rng = random.Random(seed)
        x0, y0, x1, y1 = topology.bounding_box()
        self.start = (rng.uniform(x0 + 1, x1 - 1), rng.uniform(y0 + 1, y1 - 1))
        angle = rng.uniform(0, 2 * math.pi)
        self.velocity = (speed * math.cos(angle), speed * math.sin(angle))

    def program_text(self) -> str:
        return TRACKING_PROGRAM_TEMPLATE.format(threshold=self.threshold)

    def target_position(self, epoch: int) -> Tuple[float, float]:
        x = self.start[0] + self.velocity[0] * epoch
        y = self.start[1] + self.velocity[1] * epoch
        x0, y0, x1, y1 = self.topology.bounding_box()
        return (min(max(x, x0), x1), min(max(y, y0), y1))

    def readings_for_epoch(self, epoch: int) -> List[Reading]:
        """One reading per sensor within range of the target."""
        target = self.target_position(epoch)
        out: List[Reading] = []
        for node in self.topology.node_ids:
            pos = self.topology.position(node)
            dist = math.hypot(pos[0] - target[0], pos[1] - target[1])
            strength = signal_strength(dist, self.sensing_range)
            if strength > 0.0:
                out.append((
                    float(epoch), node, "reading",
                    (node, pos, strength, epoch),
                ))
        return out

    def best_sensor(self, epoch: int) -> Optional[int]:
        """Oracle: the sensor with the strongest (detectable) reading."""
        readings = [
            (args[2], node) for _t, node, _p, args in self.readings_for_epoch(epoch)
            if args[2] >= self.threshold
        ]
        if not readings:
            return None
        return max(readings)[1]

    def tracking_error(self, epoch: int, estimate: Tuple[float, float]) -> float:
        target = self.target_position(epoch)
        return math.hypot(estimate[0] - target[0], estimate[1] - target[1])
