"""Battlefield vehicle-tracking workload (Example 1).

Enemy and friendly vehicles move through the sensor field; the sensor
nearest a vehicle emits a ``veh(type, location, time)`` detection each
epoch.  The uncovered-enemy query then flags enemy vehicles more than
``cover_range`` away from every friendly vehicle.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from ..net.topology import Topology

Detection = Tuple[float, int, str, tuple]  # (time, node, "veh", args)


class Vehicle:
    """A vehicle on a straight-line patrol with constant velocity."""

    def __init__(self, kind: str, start: Tuple[float, float], velocity: Tuple[float, float]):
        self.kind = kind
        self.start = start
        self.velocity = velocity

    def position(self, t: float) -> Tuple[float, float]:
        return (
            self.start[0] + self.velocity[0] * t,
            self.start[1] + self.velocity[1] * t,
        )


class BattlefieldWorkload:
    """Generates detections for a mix of enemy and friendly vehicles."""

    def __init__(
        self,
        topology: Topology,
        n_enemy: int = 3,
        n_friendly: int = 2,
        epochs: int = 5,
        epoch_interval: float = 1.0,
        speed: float = 0.5,
        seed: int = 0,
    ):
        self.topology = topology
        self.epochs = epochs
        self.epoch_interval = epoch_interval
        rng = random.Random(seed)
        x0, y0, x1, y1 = topology.bounding_box()
        self.vehicles: List[Vehicle] = []
        for i in range(n_enemy + n_friendly):
            kind = "enemy" if i < n_enemy else "friendly"
            start = (rng.uniform(x0, x1), rng.uniform(y0, y1))
            angle = rng.uniform(0, 2 * math.pi)
            velocity = (speed * math.cos(angle), speed * math.sin(angle))
            self.vehicles.append(Vehicle(kind, start, velocity))

    def detections(self) -> List[Detection]:
        """All detections, time-ordered: at each epoch, the node nearest
        each vehicle reports it."""
        out: List[Detection] = []
        x0, y0, x1, y1 = self.topology.bounding_box()
        for epoch in range(self.epochs):
            t = epoch * self.epoch_interval
            for vehicle in self.vehicles:
                pos = vehicle.position(t)
                if not (x0 <= pos[0] <= x1 and y0 <= pos[1] <= y1):
                    continue  # left the field: no detection this epoch
                node = self.topology.nearest_node(pos)
                loc = (round(pos[0], 2), round(pos[1], 2))
                out.append((t, node, "veh", (vehicle.kind, loc, epoch)))
        return out

    @staticmethod
    def uncovered_oracle(
        detections: Sequence[Detection], cover_range: float
    ) -> set:
        """Ground truth: enemy detections with no friendly detection of
        the same epoch within ``cover_range``."""
        by_epoch: dict = {}
        for _t, _node, _pred, (kind, loc, epoch) in detections:
            by_epoch.setdefault(epoch, []).append((kind, loc))
        out = set()
        for epoch, rows in by_epoch.items():
            friendlies = [loc for kind, loc in rows if kind == "friendly"]
            for kind, loc in rows:
                if kind != "enemy":
                    continue
                covered = any(
                    math.hypot(loc[0] - f[0], loc[1] - f[1]) <= cover_range
                    for f in friendlies
                )
                if not covered:
                    out.add((loc, epoch))
        return out
