"""Generic synthetic stream workloads.

Benchmarks need reproducible distributed insertion streams with a
controllable join selectivity; this module generates timed event lists
``(time, node, predicate, args)`` to feed an engine.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

Event = Tuple[float, int, str, tuple]


class UniformStreamWorkload:
    """Tuples of several streams generated uniformly across nodes.

    Each stream ``s`` emits tuples ``(key, payload)`` where ``key`` is
    drawn from ``range(key_domain)`` — two tuples of different streams
    join when their keys match, so ``key_domain`` controls selectivity
    (smaller domain, more matches).
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        streams: Sequence[str] = ("r", "s"),
        tuples_per_stream: int = 20,
        key_domain: int = 8,
        interval: float = 1.0,
        seed: int = 0,
    ):
        self.node_ids = list(node_ids)
        self.streams = list(streams)
        self.tuples_per_stream = tuples_per_stream
        self.key_domain = key_domain
        self.interval = interval
        self.seed = seed

    def events(self) -> List[Event]:
        rng = random.Random(self.seed)
        out: List[Event] = []
        t = 0.0
        for i in range(self.tuples_per_stream):
            for stream_index, stream in enumerate(self.streams):
                node = rng.choice(self.node_ids)
                key = rng.randrange(self.key_domain)
                payload = f"{stream}{i}"
                out.append((t, node, stream, (key, payload)))
                t += self.interval
        return out


class ChurnWorkload:
    """Insert-then-delete workload for deletion/maintenance benchmarks.

    Produces (time, op, node, predicate, args) with ``op`` in
    {'ins', 'del'}; every deleted tuple was inserted earlier.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        predicate: str = "r",
        inserts: int = 30,
        delete_fraction: float = 0.4,
        key_domain: int = 6,
        interval: float = 1.0,
        seed: int = 0,
    ):
        self.node_ids = list(node_ids)
        self.predicate = predicate
        self.inserts = inserts
        self.delete_fraction = delete_fraction
        self.key_domain = key_domain
        self.interval = interval
        self.seed = seed

    def events(self) -> List[Tuple[float, str, int, str, tuple]]:
        rng = random.Random(self.seed)
        out = []
        live: List[Tuple[int, tuple]] = []
        t = 0.0
        for i in range(self.inserts):
            node = rng.choice(self.node_ids)
            args = (rng.randrange(self.key_domain), f"v{i}")
            out.append((t, "ins", node, self.predicate, args))
            live.append((node, args))
            t += self.interval
            if live and rng.random() < self.delete_fraction:
                node, args = live.pop(rng.randrange(len(live)))
                out.append((t, "del", node, self.predicate, args))
                t += self.interval
        return out
