"""Trajectory workload (Example 2).

Targets cross the field one report per timestep (the paper assumes a
single sensor detects the target at any instant, so a trajectory can be
synthesized from a sequence of ``report`` tuples).  Provides the
``close``/``isparallel`` built-ins the trajectory program uses and an
oracle for complete trajectories and parallel pairs.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..core.builtins import BuiltinRegistry
from ..net.topology import Topology

Report = Tuple[int, int, int]  # (x, y, t)
ReportEvent = Tuple[float, int, str, tuple]  # (time, node, "report", (report,))

#: The trajectory logic program (standard cons lists, newest first).
TRAJECTORY_PROGRAM = """
    notstart(R2) :- report(R1), report(R2), close(R1, R2).
    notlast(R1) :- report(R1), report(R2), close(R1, R2).
    traj([R2, R1]) :- report(R1), report(R2), close(R1, R2), not notstart(R1).
    traj([R2, R1 | Rest]) :- traj([R1 | Rest]), report(R2), close(R1, R2).
    completetraj([R | Rest]) :- traj([R | Rest]), not notlast(R).
    parallel(L1, L2) :- completetraj(L1), completetraj(L2), isparallel(L1, L2).
"""


def close_reports(r1, r2) -> bool:
    """r2 can follow r1 on a trajectory: next timestep, adjacent cell."""
    return (
        r2[2] == r1[2] + 1
        and abs(r2[0] - r1[0]) <= 1
        and abs(r2[1] - r1[1]) <= 1
        and (r2[0], r2[1]) != (r1[0], r1[1])
    )


def parallel_paths(l1, l2) -> bool:
    """Same length, constant nonzero offset, not the same path."""
    if len(l1) != len(l2) or list(l1) == list(l2):
        return False
    dx = {a[0] - b[0] for a, b in zip(l1, l2)}
    dy = {a[1] - b[1] for a, b in zip(l1, l2)}
    return len(dx) == 1 and len(dy) == 1


def trajectory_registry(base: BuiltinRegistry = None) -> BuiltinRegistry:
    """A registry with the trajectory built-ins installed."""
    registry = base.copy() if base is not None else BuiltinRegistry()
    registry.register_predicate("close", close_reports)
    registry.register_predicate("isparallel", parallel_paths)
    return registry


class TrajectoryWorkload:
    """Targets moving diagonally across the field, optionally in
    parallel pairs."""

    def __init__(
        self,
        topology: Topology,
        n_targets: int = 2,
        length: int = 4,
        parallel_pair: bool = True,
        seed: int = 0,
    ):
        self.topology = topology
        self.length = length
        rng = random.Random(seed)
        x0, y0, x1, y1 = topology.bounding_box()
        self.tracks: List[List[Report]] = []
        for i in range(n_targets):
            if parallel_pair and i == 1 and self.tracks:
                # Second target: offset copy of the first — a parallel
                # pair.  Offset 3 keeps the tracks far enough apart that
                # `close` cannot chain reports across them (the paper's
                # single-detection assumption).
                offset = 3
                self.tracks.append(
                    [(x, y + offset, t) for (x, y, t) in self.tracks[0]]
                )
                continue
            sx = rng.randrange(int(x0), max(int(x0) + 1, int(x1) - self.length))
            sy = rng.randrange(int(y0), max(int(y0) + 1, int(y1) - self.length))
            self.tracks.append([(sx + t, sy + t, t) for t in range(self.length)])

    def reports(self) -> List[ReportEvent]:
        out: List[ReportEvent] = []
        for track in self.tracks:
            for (x, y, t) in track:
                node = self.topology.nearest_node((float(x), float(y)))
                out.append((float(t), node, "report", ((x, y, t),)))
        out.sort(key=lambda e: e[0])
        return out

    def complete_trajectories(self) -> set:
        """Oracle: each track as a newest-first tuple of reports."""
        return {tuple(reversed(track)) for track in self.tracks}

    def parallel_pairs(self) -> set:
        """Oracle: unordered parallel pairs of complete trajectories."""
        tracks = [tuple(reversed(t)) for t in self.tracks]
        out = set()
        for i, a in enumerate(tracks):
            for b in tracks[i + 1:]:
                if parallel_paths(a, b):
                    out.add(frozenset((a, b)))
        return out
