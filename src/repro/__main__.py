"""``python -m repro`` — the interactive deductive shell."""

import sys

from .cli import main

sys.exit(main())
