"""Lightweight hierarchical spans.

``with span("fixpoint", rule="r1"):`` times a section in wall-clock
time and (when a simulator is passed) simulated time, nests under the
context-local active span, and on exit appends a record to the JSONL
sink and an observation to the ``repro_span_seconds`` histogram — so
traces show *structure* and the registry shows *distributions* from the
same instrumentation point.

Disabled-mode cost is one flag check and the return of a shared no-op
context manager: no allocation, no contextvar traffic.
"""

from __future__ import annotations

import itertools
import time
from contextvars import ContextVar
from typing import Optional, Tuple

from . import state
from .export import SINK
from .registry import REGISTRY

#: Context-local stack of active spans (a tuple: cheap to push/pop and
#: safe across asyncio/threads via contextvars).
_stack: ContextVar[Tuple["Span", ...]] = ContextVar("repro_obs_spans",
                                                    default=())
_span_ids = itertools.count(1)

span_seconds = REGISTRY.histogram(
    "repro_span_seconds",
    "Wall-clock duration of instrumented sections, by span name",
    labelnames=("name",),
)


class Span:
    """One timed section.  Use via :func:`span`; attributes are frozen
    at creation except ``attrs``, which :meth:`set` can extend while
    the span is open (e.g. recording an iteration count on exit)."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "sim",
                 "_t0", "_sim0", "_token", "wall_s", "sim_s")

    def __init__(self, name: str, sim=None, attrs: Optional[dict] = None):
        self.name = name
        self.span_id = next(_span_ids)
        self.attrs = attrs or {}
        self.sim = sim
        self.parent_id = None
        self.wall_s = None
        self.sim_s = None
        self._token = None
        self._t0 = 0.0
        self._sim0 = None

    def set(self, **attrs) -> None:
        """Attach attributes to an open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        parent = _stack.get()
        if parent:
            self.parent_id = parent[-1].span_id
        self._token = _stack.set(parent + (self,))
        if self.sim is not None:
            self._sim0 = self.sim.now
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        if self._token is not None:
            _stack.reset(self._token)
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_s": self.wall_s,
        }
        if self._sim0 is not None:
            self.sim_s = self.sim.now - self._sim0
            record["sim_s"] = self.sim_s
            record["sim_start"] = self._sim0
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if exc_type is not None:
            record["error"] = exc_type.__name__
        SINK.emit(record)
        span_seconds.labels(name=self.name).observe(self.wall_s)
        return False


class _NullSpan:
    """Shared no-op context manager for disabled mode."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL = _NullSpan()


def span(name: str, sim=None, **attrs):
    """Open a telemetry span.  ``sim`` is any object with a ``.now``
    simulated-time property (a :class:`repro.net.sim.Simulator`);
    remaining keywords become span attributes."""
    if not state.enabled:
        return _NULL
    return Span(name, sim=sim, attrs=attrs)


def current_span() -> Optional[Span]:
    """The innermost open span in this context, if any."""
    stack = _stack.get()
    return stack[-1] if stack else None
