"""repro.obs — unified telemetry: metric registry, spans, exporters.

The observability layer behind the evaluation experiments (E1–E16):
the evaluator, simulator, radio, and distributed engines feed a
process-wide metric registry and emit hierarchical spans; exporters
turn a run into a JSONL trace, a Prometheus-style text snapshot, and a
reproducibility manifest.

Telemetry is **off by default** and costs one flag check per
instrumentation site when off.  Enable with ``REPRO_TELEMETRY=1`` in
the environment or programmatically::

    from repro import obs

    obs.enable()
    ...  # run an experiment
    print(obs.prometheus_snapshot())
    obs.write_run_artifacts("out/", "myrun")

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from __future__ import annotations

import os

from . import state
from .export import (
    SINK,
    EventSink,
    event,
    program_hash,
    prometheus_snapshot,
    read_jsonl,
    run_manifest,
    write_run_artifacts,
)
from .registry import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Family,
    Gauge,
    Histogram,
    Registry,
    log_buckets,
)
from .spans import Span, current_span, span

if os.environ.get("REPRO_TELEMETRY", "").strip() not in ("", "0", "false"):
    state.enabled = True


def enable() -> None:
    """Turn telemetry on for the whole process."""
    state.enabled = True


def disable() -> None:
    """Turn telemetry off (existing metrics/trace are kept until
    :func:`reset`)."""
    state.enabled = False


def enabled() -> bool:
    """Is telemetry currently on?"""
    return state.enabled


def reset() -> None:
    """Zero all metrics and drop the collected trace (the flag is
    untouched) — call between runs that share a process."""
    from . import instrument as _inst

    _inst.discard_buffers()  # pending hot-loop counts die with the run
    REGISTRY.reset()
    SINK.clear()


__all__ = [
    "COUNT_BUCKETS", "DEFAULT_BUCKETS", "Counter", "EventSink", "Family",
    "Gauge", "Histogram", "REGISTRY", "Registry", "SINK", "Span",
    "current_span", "disable", "enable", "enabled", "event", "log_buckets",
    "program_hash", "prometheus_snapshot", "read_jsonl", "reset",
    "run_manifest", "span", "state", "write_run_artifacts",
]
