"""Structured telemetry export: JSONL events, Prometheus text, manifests.

Three artifact shapes, all file-based and dependency-free:

* :class:`EventSink` — an in-memory buffer of span/event records that
  serializes to JSON Lines (one record per line), the grep-able trace
  format;
* :func:`prometheus_snapshot` — the registry rendered in Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` / samples), so
  snapshots diff cleanly and standard tooling can parse them;
* :func:`run_manifest` — the reproducibility envelope for one run:
  interpreter, platform, git revision, command line, plus whatever the
  caller knows (seed, program hash, topology).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional

from . import state
from .registry import REGISTRY, Counter, Gauge, Histogram, Registry


class EventSink:
    """Bounded in-memory buffer of telemetry records (dicts)."""

    def __init__(self, capacity: Optional[int] = 200_000):
        self.capacity = capacity
        self.records: List[dict] = []
        self.truncated = False

    def emit(self, record: dict) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.truncated = True
            return
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()
        self.truncated = False

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns records written.
        Non-JSON values (terms, tuples-as-keys, ...) degrade to repr."""
        with open(path, "w") as f:
            for record in self.records:
                f.write(json.dumps(record, default=repr))
                f.write("\n")
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)


#: The process-wide default sink spans and events append to.
SINK = EventSink()


def event(name: str, **fields) -> None:
    """Record a point-in-time telemetry event (no-op when disabled)."""
    if not state.enabled:
        return
    SINK.emit({"type": "event", "name": name, "wall_ts": time.time(),
               **fields})


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSONL trace back into records (the round-trip helper)."""
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _render_labels(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_num(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def prometheus_snapshot(registry: Registry = REGISTRY) -> str:
    """Render every registered series in Prometheus text format."""
    from . import instrument as _inst  # late: avoids import-order knots

    _inst.flush_counters()  # drain buffered hot-loop counts first
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.series():
            labels = _render_labels(family.labelnames, values)
            if isinstance(child, (Counter, Gauge)):
                lines.append(f"{family.name}{labels} {_fmt_num(child.value)}")
            elif isinstance(child, Histogram):
                cumulative = 0
                for bound, n in zip(
                    list(child.bounds) + [float("inf")], child.counts
                ):
                    cumulative += n
                    le = _render_labels(
                        family.labelnames + ("le",),
                        values + (_fmt_num(bound),),
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                lines.append(
                    f"{family.name}_sum{labels} {_fmt_num(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{labels} {_fmt_num(child.count)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Run manifests
# ---------------------------------------------------------------------------


def program_hash(text: str) -> str:
    """Stable content hash for a program source (manifest field)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() or None if out.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        return None


def run_manifest(**extra) -> Dict[str, object]:
    """Describe this run well enough to reproduce it.  ``extra`` is the
    caller's knowledge: seed, program hash, topology, scale, ..."""
    manifest: Dict[str, object] = {
        "wall_time": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "git_revision": _git_revision(),
        "telemetry_env": os.environ.get("REPRO_TELEMETRY"),
    }
    manifest.update(extra)
    return manifest


def write_run_artifacts(
    out_dir: str,
    name: str,
    registry: Registry = REGISTRY,
    sink: EventSink = SINK,
    manifest_extra: Optional[dict] = None,
) -> Dict[str, str]:
    """Dump the full telemetry state of a run next to its results:
    ``<name>.trace.jsonl`` (spans + events), ``<name>.metrics.prom``
    (registry snapshot), ``<name>.manifest.json``.  Returns the paths
    keyed by artifact kind."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "trace": os.path.join(out_dir, f"{name}.trace.jsonl"),
        "metrics": os.path.join(out_dir, f"{name}.metrics.prom"),
        "manifest": os.path.join(out_dir, f"{name}.manifest.json"),
    }
    sink.write_jsonl(paths["trace"])
    with open(paths["metrics"], "w") as f:
        f.write(prometheus_snapshot(registry))
    manifest = run_manifest(
        experiment=name,
        trace_records=len(sink),
        trace_truncated=sink.truncated,
        **(manifest_extra or {}),
    )
    with open(paths["manifest"], "w") as f:
        json.dump(manifest, f, indent=2, default=repr)
    return paths
