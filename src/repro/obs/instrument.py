"""The shared metric families the instrumented layers feed.

Declared once here (registration is idempotent anyway) so that the
evaluator, simulator, radio and distributed engines agree on names and
label schemas, and so instrumentation call sites stay one-liners:

    from ..obs import state as _obs
    from ..obs import instrument as _inst
    ...
    if _obs.enabled:
        _inst.rule_firings.labels(rule=label).inc()

This module must stay import-cheap and free of repro dependencies —
it is pulled in by ``repro.core`` and ``repro.net`` at import time.
"""

from __future__ import annotations

from . import state as _state
from .registry import COUNT_BUCKETS, REGISTRY

# -- core.eval --------------------------------------------------------------

rule_firings = REGISTRY.counter(
    "repro_rule_firings_total",
    "Head tuples produced by rule bodies (before dedup), by rule",
    labelnames=("rule",),
)
rule_derived = REGISTRY.counter(
    "repro_rule_derived_total",
    "New tuples actually added by each rule (after dedup)",
    labelnames=("rule",),
)
fixpoint_iterations = REGISTRY.histogram(
    "repro_fixpoint_iterations",
    "Semi-naive rounds until a stratum reaches fixpoint",
    labelnames=("evaluator",),
    buckets=COUNT_BUCKETS,
)
delta_size = REGISTRY.histogram(
    "repro_delta_tuples",
    "Per-round delta sizes (new tuples per predicate per round)",
    labelnames=("predicate",),
    buckets=COUNT_BUCKETS,
)
join_probes = REGISTRY.counter(
    "repro_join_probes_total",
    "Relation.candidates() probes performed during evaluation",
)
relation_scans = REGISTRY.counter(
    "repro_relation_scans_total",
    "Full relation scans (unindexed Relation.scan() calls) during "
    "evaluation",
)

# -- core.plan ---------------------------------------------------------------

plan_cache_hits = REGISTRY.counter(
    "repro_plan_cache_hits_total",
    "Compiled-plan cache hits",
)
plan_cache_misses = REGISTRY.counter(
    "repro_plan_cache_misses_total",
    "Compiled-plan cache misses (rule compilations)",
)
join_selectivity = REGISTRY.histogram(
    "repro_join_selectivity",
    "Per-execution join selectivity (matched / scanned candidate "
    "tuples), by rule",
    labelnames=("rule",),
    buckets=(0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
)

# -- core.vector (columnar batch executor) -----------------------------------

batch_rows = REGISTRY.counter(
    "repro_batch_rows_total",
    "Head tuples produced by vectorized batch rule executions",
)
vectorized_steps = REGISTRY.counter(
    "repro_vectorized_steps_total",
    "Plan steps executed as numpy column kernels",
)
fallback_steps = REGISTRY.counter(
    "repro_fallback_steps_total",
    "Batch executions abandoned to the tuple executor at runtime",
)

# -- net.sim / net.radio ----------------------------------------------------

sim_events = REGISTRY.counter(
    "repro_sim_events_total",
    "Discrete events processed by the simulator",
)
sim_queue_hwm = REGISTRY.gauge(
    "repro_sim_queue_depth_hwm",
    "High-water mark of the simulator event-queue depth",
)
radio_tx = REGISTRY.counter(
    "repro_radio_tx_total",
    "Radio transmissions, by phase category",
    labelnames=("category",),
)
radio_rx = REGISTRY.counter(
    "repro_radio_rx_total",
    "Radio receptions",
)
radio_drops = REGISTRY.counter(
    "repro_radio_drops_total",
    "Messages lost (loss, dead endpoint, collision)",
)
radio_collisions = REGISTRY.counter(
    "repro_radio_collisions_total",
    "Frames lost to channel contention specifically",
)

# -- net.transport (reliable delivery) --------------------------------------

radio_acks = REGISTRY.counter(
    "repro_radio_acks_total",
    "Reliable transfers confirmed by a link-layer acknowledgment",
)
radio_retries = REGISTRY.counter(
    "repro_radio_retries_total",
    "Frame retransmissions after an ack timeout",
)
radio_dup_suppressed = REGISTRY.counter(
    "repro_radio_dup_suppressed_total",
    "Duplicate frames suppressed by receiver-side (src, msg_id) dedup",
)
radio_retry_exhausted = REGISTRY.counter(
    "repro_radio_retry_exhausted_total",
    "Reliable transfers abandoned after the retry budget ran out",
)


#: Radio event kind -> unlabeled counter family it feeds.
_RADIO_EVENT_FAMILIES = {
    "rx": radio_rx,
    "drop": radio_drops,
    "collision": radio_collisions,
    "ack": radio_acks,
    "retry": radio_retries,
    "dup": radio_dup_suppressed,
    "give_up": radio_retry_exhausted,
}

# Hot-loop buffers: every radio frame produces 2+ events, and going
# through Family.labels()/Counter.inc() per event measurably drags the
# simulator when telemetry is on.  Events accumulate in plain dicts and
# drain into the registry in bulk — at the end of every Simulator.run()
# and before any registry read (snapshot/export/reset).
_radio_event_buffer: dict = {}
_radio_tx_buffer: dict = {}


def observe_radio_event(event) -> None:
    """The telemetry bridge: an ordinary RadioEvent observer mapping
    radio-layer events onto the metric families above.  Subscribed by
    every Radio at construction; a single flag check when telemetry is
    off.  Takes any object with ``event``/``category`` attributes so
    this module stays free of repro.net imports.

    Counts are *buffered* (see :func:`flush_counters`); readers going
    through :mod:`repro.obs.export` never see the buffers, but code
    peeking at ``REGISTRY`` directly mid-run should flush first.
    """
    if not _state.enabled:
        return
    kind = event.event
    if kind == "tx":
        cat = event.category
        _radio_tx_buffer[cat] = _radio_tx_buffer.get(cat, 0) + 1
    elif kind in _RADIO_EVENT_FAMILIES:
        _radio_event_buffer[kind] = _radio_event_buffer.get(kind, 0) + 1


def flush_counters() -> None:
    """Drain the buffered hot-loop counts into their registry families."""
    if _radio_tx_buffer:
        for cat, n in _radio_tx_buffer.items():
            radio_tx.labels(category=cat).inc(n)
        _radio_tx_buffer.clear()
    if _radio_event_buffer:
        for kind, n in _radio_event_buffer.items():
            _RADIO_EVENT_FAMILIES[kind].inc(n)
        _radio_event_buffer.clear()


def discard_buffers() -> None:
    """Drop buffered counts without recording them (registry reset)."""
    _radio_tx_buffer.clear()
    _radio_event_buffer.clear()

# -- net.faults / recovery (fault injection, E20) ---------------------------

node_crashes = REGISTRY.counter(
    "repro_node_crashes_total",
    "Node deaths, by cause ('crash' fault injection, 'energy' battery "
    "depletion)",
    labelnames=("cause",),
)
node_recoveries = REGISTRY.counter(
    "repro_node_recoveries_total",
    "Nodes revived after a death (Radio.revive)",
)
link_faults = REGISTRY.counter(
    "repro_link_faults_total",
    "Link state transitions injected by the fault layer, by new state",
    labelnames=("state",),
)
ght_failovers = REGISTRY.counter(
    "repro_ght_failovers_total",
    "GHT lookups re-homed from a dead primary to a live replica",
)
ght_resyncs = REGISTRY.counter(
    "repro_ght_resyncs_total",
    "Anti-entropy re-syncs pulled by recovered replica holders",
)
tree_repairs = REGISTRY.counter(
    "repro_tree_repairs_total",
    "Routing self-repairs, by kind ('route' next-hop re-selection, "
    "'join' join-member substitution, 'launch' dead-origin join launch)",
    labelnames=("kind",),
)

# -- net.shard supervision (checkpoints + worker recovery, E25) -------------

shard_checkpoints = REGISTRY.counter(
    "repro_shard_checkpoints_total",
    "Shard worker snapshots captured at conservative-window barriers",
)
shard_checkpoint_bytes = REGISTRY.counter(
    "repro_shard_checkpoint_bytes_total",
    "Serialized size of captured shard snapshots",
)
shard_checkpoint_seconds = REGISTRY.histogram(
    "repro_shard_checkpoint_seconds",
    "Wall-clock time to capture one shard snapshot",
)
shard_recoveries = REGISTRY.counter(
    "repro_shard_recoveries_total",
    "Shard workers restarted by the supervisor, by cause "
    "('crash' unclean death, 'hang' heartbeat timeout)",
    labelnames=("cause",),
)
shard_replayed_windows = REGISTRY.counter(
    "repro_shard_replayed_windows_total",
    "Conservative windows re-executed during shard recovery",
)
shard_recovery_seconds = REGISTRY.histogram(
    "repro_shard_recovery_seconds",
    "Wall-clock time to restore a shard worker and replay its missed "
    "windows",
)

# -- dist.gpa / dist.localized ---------------------------------------------

gpa_messages = REGISTRY.counter(
    "repro_gpa_phase_messages_total",
    "GPA messages handled, by phase and join strategy",
    labelnames=("phase", "strategy"),
)
phase_latency = REGISTRY.histogram(
    "repro_phase_latency_seconds",
    "Simulated time from a phase's launch to its completion, by phase, "
    "join strategy, and evaluation mode ('barrier' | 'pipelined')",
    labelnames=("phase", "strategy", "mode"),
)
coordfree_programs = REGISTRY.counter(
    "repro_coordfree_programs_total",
    "Coordination-freeness verdicts handed out when pipelined "
    "evaluation is requested, by verdict ('monotone' | 'win-move' | a "
    "NeedsBarriers reason code | an engine fallback code)",
    labelnames=("verdict",),
)
pipeline_streamed = REGISTRY.counter(
    "repro_pipeline_streamed_derivations_total",
    "Derivations emitted by eagerly streamed (barrier-free) join "
    "tokens in pipelined mode",
)
result_latency = REGISTRY.histogram(
    "repro_result_latency_seconds",
    "Simulated update-to-first-derivation latency, by head predicate",
    labelnames=("predicate",),
)
localized_messages = REGISTRY.counter(
    "repro_localized_messages_total",
    "LocalizedEngine messages handled, by kind",
    labelnames=("kind",),
)

# -- repro.serve (multi-tenant serving, E21) ---------------------------------

tenant_msgs = REGISTRY.counter(
    "repro_tenant_msgs_total",
    "Radio transmissions attributed to one tenant's phase traffic",
    labelnames=("tenant",),
)
tenant_result_latency = REGISTRY.histogram(
    "repro_tenant_result_latency_seconds",
    "Simulated update-to-first-derivation latency, by tenant",
    labelnames=("tenant",),
)
tenant_rejections = REGISTRY.counter(
    "repro_tenant_rejections_total",
    "Tenant admissions refused or sessions cut off, by reason",
    labelnames=("tenant", "reason"),
)
placement_migrations = REGISTRY.counter(
    "repro_placement_migrations_total",
    "Storage regions migrated by the adaptive placement loop",
)
serve_load_imbalance = REGISTRY.gauge(
    "repro_serve_load_imbalance",
    "Last epoch's network-wide transmission-load imbalance (max/mean)",
)
