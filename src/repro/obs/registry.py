"""Process-wide metric registry: counters, gauges, histograms.

Prometheus-shaped but dependency-free.  A :class:`Registry` owns named
*families*; a family with label names hands out per-label-value
children (``family.labels(rule="r1").inc()``), a family without label
names acts directly as its single child.  Histograms use fixed
log-scale buckets so latencies spanning microseconds to minutes land in
meaningfully-sized bins without any configuration.

Everything here is plain dict-and-int bookkeeping: cheap enough to call
on hot paths when telemetry is enabled, and never called at all when it
is not (call sites check :data:`repro.obs.state.enabled` first).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


def log_buckets(
    start: float = 1e-6, stop: float = 1e4, per_decade: int = 2
) -> Tuple[float, ...]:
    """Log-scale bucket upper bounds from ``start`` to ``stop``
    inclusive, ``per_decade`` buckets per decade."""
    if start <= 0 or stop <= start or per_decade < 1:
        raise ValueError("need 0 < start < stop and per_decade >= 1")
    bounds: List[float] = []
    factor = 10.0 ** (1.0 / per_decade)
    bound = start
    while bound < stop * (1 + 1e-12):
        # Rounded to 3 significant digits so exposition output stays
        # readable (3.16e-06, not 3.1622776601683795e-06).
        bounds.append(float(f"{bound:.3g}"))
        bound *= factor
    return tuple(bounds)


#: Default bounds: 1µs .. 10ks in half-decade steps — wide enough for
#: both wall-clock section timings and simulated phase latencies.
DEFAULT_BUCKETS = log_buckets()

#: Bounds suited to integer work counts (delta sizes, iterations).
COUNT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000,
                 10_000, 50_000, 100_000, 1_000_000)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment {amount} is negative")
        self.value += amount


class Gauge:
    """A value that can go up and down (plus max-tracking for
    high-water marks)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Keep the maximum of the current and given value."""
        if value > self.value:
            self.value = value


class Histogram:
    """Observations binned into fixed (log-scale by default) buckets.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the +Inf overflow bucket.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding
        the q-th observation (conservative, like Prometheus's
        histogram_quantile without interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """A named metric with a fixed label-name schema.

    With label names, :meth:`labels` returns (and caches) the child for
    one label-value combination.  Without label names the family owns a
    single anonymous child and proxies its methods, so
    ``registry.counter("x", "...").inc()`` just works.
    """

    def __init__(self, kind: str, name: str, help: str,
                 labelnames: Sequence[str] = (), **child_kwargs):
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._child_kwargs = child_kwargs
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = _KINDS[kind](**child_kwargs)

    def labels(self, **labels):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = _KINDS[self.kind](**self._child_kwargs)
            self._children[key] = child
        return child

    def series(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in insertion order."""
        return iter(self._children.items())

    # -- unlabeled convenience proxies ---------------------------------

    def _solo(self):
        if self.labelnames:
            raise ValueError(f"{self.name} has labels {self.labelnames}; "
                             "use .labels(...)")
        return self._children[()]

    def inc(self, amount: float = 1) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_max(self, value: float) -> None:
        self._solo().set_max(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self):
        return self._solo().value


class Registry:
    """Name → :class:`Family`; registration is idempotent (re-declaring
    the same name with the same kind returns the existing family)."""

    def __init__(self):
        self._families: Dict[str, Family] = {}
        self._lock = threading.Lock()

    def _register(self, kind: str, name: str, help: str,
                  labelnames: Sequence[str], **kwargs) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}"
                    )
                return family
            family = Family(kind, name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Family:
        return self._register("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Family:
        return self._register("gauge", name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Family:
        return self._register("histogram", name, help, labelnames,
                              bounds=buckets)

    def get(self, name: str) -> Optional[Family]:
        return self._families.get(name)

    def families(self) -> List[Family]:
        return list(self._families.values())

    def reset(self) -> None:
        """Zero every series (families and label schemas survive, so
        cached ``.labels()`` children keep working)."""
        with self._lock:
            for family in self._families.values():
                for child in family._children.values():
                    if isinstance(child, Histogram):
                        child.counts = [0] * (len(child.bounds) + 1)
                        child.sum = 0.0
                        child.count = 0
                    else:
                        child.value = 0


#: The process-wide default registry every instrumentation site uses.
REGISTRY = Registry()
