"""The telemetry master switch.

One module-level boolean, checked by every instrumentation site before
any allocation happens.  It lives in its own dependency-free module so
hot paths can do ``from ..obs import state`` once at import time and
then pay a single attribute read per check — mutating
``state.enabled`` through :func:`repro.obs.enable` is visible to every
importer immediately (modules share the attribute, unlike a
``from ... import enabled`` value snapshot).
"""

#: Global telemetry switch.  Off by default; flipped by
#: ``REPRO_TELEMETRY=1`` at import or ``repro.obs.enable()`` at runtime.
enabled = False
