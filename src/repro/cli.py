"""Interactive shell and command-line front end.

``python -m repro`` opens a small deductive-database shell::

    repro> par(a, b).
    repro> anc(X, Y) :- par(X, Y).
    repro> anc(X, Z) :- par(X, Y), anc(Y, Z).
    repro> ?- anc(a, Z).
    anc(a, b)

    repro> :classify
    nonrecursive ... etc

Non-interactive usage evaluates a program file and prints query answers::

    python -m repro program.dl --query "anc(a, Z)"
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.ast import Program
from .core.builtins import BuiltinRegistry, DEFAULT_REGISTRY
from .core.errors import ReproError
from .core.eval import Database, evaluate
from .core.parser import Parser, parse_atom, parse_program
from .core.stratify import classify, classify_coordination
from .core.topdown import TopDownEvaluator

HELP = """\
Enter rules/facts ending with '.', queries as '?- goal.', or commands:
  :rules            list the current program
  :facts PRED       list stored facts for PRED
  :eval             bottom-up evaluate the whole program
  :classify         show the evaluation class + coordination verdict
  :explain          show the evaluation plan (safety, strata, join order)
  :load FILE        load rules from a file
  :metrics [on|off|reset]  telemetry snapshot / toggle / zero counters
  :serve [N] [M]    run a multi-tenant serving demo (N tenants, MxM grid)
  :faults churn NODES RATE HORIZON [SEED] [SLOTS]
                    summarize a generated fault schedule (kind counts,
                    first/last timestamps)
  :reset            drop program and facts
  :help             this text
  :quit             leave the shell"""


class Shell:
    """The REPL engine, decoupled from the terminal for testability:
    feed lines to :meth:`handle` and collect the returned output."""

    def __init__(self, registry: Optional[BuiltinRegistry] = None):
        self.registry = registry or DEFAULT_REGISTRY
        self.program = Program()
        self.db = Database(self.registry)
        self._evaluated = False

    # -- public -----------------------------------------------------------

    def handle(self, line: str) -> str:
        """Process one input line; returns the printable response."""
        line = line.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            return ""
        try:
            if line.startswith(":"):
                return self._command(line)
            if line.startswith("?-"):
                return self._query(line[2:].strip().rstrip("."))
            return self._statement(line)
        except ReproError as exc:
            return f"error: {exc}"

    # -- internals ------------------------------------------------------------

    def _command(self, line: str) -> str:
        parts = line.split(None, 1)
        cmd, arg = parts[0], (parts[1] if len(parts) > 1 else "")
        if cmd in (":quit", ":q", ":exit"):
            raise EOFError
        if cmd == ":help":
            return HELP
        if cmd == ":rules":
            return repr(self.program) or "(empty program)"
        if cmd == ":facts":
            pred = arg.strip()
            if not pred:
                return "usage: :facts PRED"
            rows = sorted(map(str, self.db.rows(pred)))
            return "\n".join(rows) if rows else f"(no {pred} facts)"
        if cmd == ":eval":
            self._ensure_evaluated(force=True)
            idb = sorted(self.program.idb_predicates())
            counts = ", ".join(f"{p}: {self.db.count(p)}" for p in idb)
            return f"evaluated. {counts}" if idb else "evaluated."
        if cmd == ":classify":
            analysis = classify(self.program).program_class.value
            verdict = classify_coordination(self.program)
            if verdict.coordination_free:
                coord = f"coordination-free ({verdict.kind})"
            else:
                coord = (
                    f"needs barriers ({verdict.reason}): {verdict.detail}"
                )
            return f"{analysis}\ncoordination: {coord}"
        if cmd == ":explain":
            from .core.explain import explain

            return explain(self.program)
        if cmd == ":load":
            with open(arg.strip()) as f:
                text = f.read()
            loaded = parse_program(text, self.registry)
            for rule in loaded.rules:
                self.program.add_rule(rule)
            for fact in loaded.facts:
                self.db.assert_atom(fact)
            self._evaluated = False
            return f"loaded {len(loaded.rules)} rules, {len(loaded.facts)} facts"
        if cmd == ":metrics":
            return self._metrics(arg.strip())
        if cmd == ":serve":
            return self._serve(arg.strip())
        if cmd == ":faults":
            return self._faults(arg.strip())
        if cmd == ":reset":
            self.program = Program()
            self.db = Database(self.registry)
            self._evaluated = False
            return "reset."
        return f"unknown command {cmd!r} (try :help)"

    def _metrics(self, arg: str) -> str:
        from . import obs

        if arg == "on":
            obs.enable()
            return "telemetry enabled."
        if arg == "off":
            obs.disable()
            return "telemetry disabled."
        if arg == "reset":
            obs.reset()
            return "telemetry reset."
        if arg:
            return "usage: :metrics [on|off|reset]"
        if not obs.enabled():
            return "telemetry is off (:metrics on, or set REPRO_TELEMETRY=1)"
        snapshot = obs.prometheus_snapshot().rstrip()
        return snapshot if snapshot else "(no metrics recorded yet)"

    def _faults(self, arg: str) -> str:
        from .net.faults import FaultSchedule

        usage = ":faults churn NODES RATE HORIZON [SEED] [SLOTS]"
        parts = arg.split()
        if not parts or parts[0] != "churn" or not 4 <= len(parts) <= 6:
            return f"usage: {usage}"
        try:
            nodes = int(parts[1])
            rate = float(parts[2])
            horizon = float(parts[3])
            seed = int(parts[4]) if len(parts) > 4 else 0
            slots = int(parts[5]) if len(parts) > 5 else 4
        except ValueError:
            return f"usage: {usage}"
        if nodes < 1 or horizon <= 0:
            return f"usage: {usage}  (NODES >= 1, HORIZON > 0)"
        try:
            schedule = FaultSchedule.random_churn(
                range(nodes), rate, horizon, seed, slots=slots
            )
        except ReproError as exc:
            return f"error: {exc}"
        summary = schedule.describe()
        if not summary["events"]:
            return "(empty schedule: rate rounds to zero victims)"
        lines = [
            f"{summary['events']} events over "
            f"[{summary['first']:.2f}, {summary['last']:.2f}]",
            f"{'kind':<12} {'count':>5} {'first':>8} {'last':>8}",
        ]
        for kind, entry in summary["kinds"].items():
            lines.append(
                f"{kind:<12} {entry['count']:>5} "
                f"{entry['first']:>8.2f} {entry['last']:>8.2f}"
            )
        return "\n".join(lines)

    def _serve(self, arg: str) -> str:
        import random

        from .net.network import GridNetwork
        from .serve import QueryServer

        parts = arg.split()
        try:
            tenants = int(parts[0]) if parts else 4
            grid = int(parts[1]) if len(parts) > 1 else 5
        except ValueError:
            return "usage: :serve [TENANTS] [GRID]"
        if not (1 <= tenants <= 16 and 2 <= grid <= 12):
            return "usage: :serve [TENANTS] [GRID]  (1-16 tenants, 2-12 grid)"

        network = GridNetwork(grid)
        server = QueryServer(network)
        rng = random.Random(0)
        program = "j(K, A, B) :- r(K, A), s(K, B)."
        for i in range(tenants):
            tenant = f"t{i}"
            server.admit(tenant, program, outputs=("j",))
            pubs = []
            for k in range(6):
                pubs.append((rng.randrange(len(network)), "r", (k % 3, f"a{k}")))
                pubs.append((rng.randrange(len(network)), "s", (k % 3, f"b{k}")))
            server.submit(tenant, pubs)
        server.run()

        report = server.report()
        lines = [
            f"served {tenants} tenants on a {grid}x{grid} grid: "
            f"{report['epochs']} epochs, makespan {report['makespan']:.2f}, "
            f"{network.metrics.total_messages} messages",
        ]
        for tenant in sorted(report["tenants"]):
            stats = report["tenants"][tenant]
            lines.append(
                f"  {tenant}: {stats['results']} results, "
                f"{stats['messages']} msgs, {stats['state']}"
            )
        if "migrations" in report:
            lines.append(
                f"placement: {report['migrations']} migrations, "
                f"cumulative imbalance "
                f"{network.metrics.load_imbalance(n_nodes=len(network)):.2f}"
            )
        return "\n".join(lines)

    def _statement(self, line: str) -> str:
        if not line.endswith("."):
            return "error: statements end with '.'"
        parser = Parser(line, self.registry)
        rule = parser.parse_rule()
        if rule.is_fact:
            self.db.assert_atom(rule.head)
            self._evaluated = False
            return ""
        self.program.add_rule(rule)
        self._evaluated = False
        return ""

    def _query(self, goal_text: str) -> str:
        goal = parse_atom(goal_text)
        if goal.predicate in self.program.idb_predicates():
            try:
                answers = TopDownEvaluator(
                    self.program, self.db.copy(), self.registry
                ).query(goal)
            except ReproError:
                # Fall back to bottom-up (e.g. XY-stratified programs).
                self._ensure_evaluated()
                answers = self._filter_rows(goal)
        else:
            answers = self._filter_rows(goal)
        if not answers:
            return "no"
        lines = sorted(
            f"{goal.predicate}({', '.join(repr(a) for a in row)})"
            for row in answers
        )
        return "\n".join(lines)

    def _filter_rows(self, goal):
        from .core.terms import Substitution
        from .core.unify import match_sequences

        rel = self.db.relation(goal.predicate)
        return {
            row for row in rel
            if match_sequences(goal.args, row, Substitution()) is not None
        }

    def _ensure_evaluated(self, force: bool = False) -> None:
        if self._evaluated and not force:
            return
        evaluate(self.program, self.db, self.registry)
        self._evaluated = True


def run_file(path: str, queries: List[str]) -> List[str]:
    """Evaluate a program file and answer the given queries."""
    shell = Shell()
    out = [shell.handle(f":load {path}")]
    for query in queries:
        out.append(shell.handle(f"?- {query}"))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Deductive sensor-network framework shell"
    )
    parser.add_argument("file", nargs="?", help="program file to load")
    parser.add_argument(
        "--query", "-q", action="append", default=[],
        help="query to answer (repeatable); implies non-interactive mode",
    )
    args = parser.parse_args(argv)

    if args.file and args.query:
        for block in run_file(args.file, args.query):
            if block:
                print(block)
        return 0

    shell = Shell()
    if args.file:
        print(shell.handle(f":load {args.file}"))
    print("repro deductive shell — :help for commands")
    while True:
        try:
            line = input("repro> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = shell.handle(line)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
