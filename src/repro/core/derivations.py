"""Derivation bookkeeping — the *set-of-derivations* approach.

A **derivation** of a derived tuple records the rule used and the list
of tuples (one per non-negated relational subgoal) that joined to yield
it (Definition 2).  Keeping the full set of derivations with each
derived tuple lets deletions be processed by subtracting derivation
sets — no counting (fragile under the non-deterministic duplication a
fault-tolerant scheme produces) and no rederivation traffic.

A derived tuple lives exactly as long as its derivation set is
non-empty; correctness requires that every remaining derivation unfolds
to a valid proof tree, which holds for non-recursive, XY-stratified and
locally non-recursive programs (Section IV-C).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .terms import Term

#: A fact is identified by its predicate and ground argument tuple.
FactKey = Tuple[str, Tuple[Term, ...]]


class CachedFactKey(tuple):
    """A fact key (``(pred, args)`` tuple) that caches its hash.

    Equal to — and hash-compatible with — the plain tuples used
    everywhere else, but dict/set operations pay one attribute read
    instead of re-walking the argument terms through their Python-level
    ``__hash__`` methods.  The evaluator creates one per stored row and
    reuses it across every derivation that references the row, which is
    where the saving comes from.  (Tuple subclasses cannot declare
    ``__slots__``, so instances carry a small dict for the cache.)
    """

    def __init__(self, _content=()):
        self._h = tuple.__hash__(self)

    def __hash__(self):
        try:
            return self._h
        except AttributeError:  # unpickled instances skip __init__
            h = self._h = tuple.__hash__(self)
            return h


_set = object.__setattr__


class Derivation:
    """One way a derived tuple was produced: rule id + supporting facts."""

    __slots__ = ("rule_id", "body_facts", "_hash")

    def __init__(self, rule_id: int, body_facts: Iterable[FactKey]):
        _set(self, "rule_id", rule_id)
        body = tuple(body_facts)
        _set(self, "body_facts", body)
        # Every derivation lands in a DerivationStore set, so it is
        # hashed at least once; computing eagerly skips the exception
        # dance a lazy slot would cost on the first call.
        _set(self, "_hash", hash((rule_id, body)))

    def __setattr__(self, name, value):
        raise AttributeError("Derivation is immutable")

    def __reduce__(self):
        # The guard also blocks pickle's slot restore; rebuild through
        # the constructor (derivation sets ride result messages across
        # shard-worker boundaries).
        return (Derivation, (self.rule_id, self.body_facts))

    def uses(self, fact: FactKey) -> bool:
        return fact in self.body_facts

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Derivation)
            and self.rule_id == other.rule_id
            and self.body_facts == other.body_facts
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        facts = ", ".join(f"{p}{tuple(map(repr, a))}" for p, a in self.body_facts)
        return f"<rule {self.rule_id}: {facts}>"


class DerivationStore:
    """Maps each derived fact to its set of derivations, with a reverse
    index from supporting facts to the facts they support (for efficient
    deletion cascades)."""

    def __init__(self):
        self._derivations: Dict[FactKey, Set[Derivation]] = {}
        #: Reverse index, or None while unbuilt.  Only the deletion
        #: paths read it, so bulk forward evaluation skips the two dict
        #: updates per recorded derivation entirely; the index is
        #: materialized from ``_derivations`` on first deletion-path
        #: access and maintained incrementally from then on.
        self._supports: Optional[Dict[FactKey, Set[FactKey]]] = None

    def _support_index(self) -> Dict[FactKey, Set[FactKey]]:
        idx = self._supports
        if idx is None:
            idx = self._supports = {}
            for fact, derivs in self._derivations.items():
                for derivation in derivs:
                    for body_fact in derivation.body_facts:
                        deps = idx.get(body_fact)
                        if deps is None:
                            idx[body_fact] = {fact}
                        else:
                            deps.add(fact)
        return idx

    def add(self, fact: FactKey, derivation: Derivation) -> bool:
        """Record a derivation; returns True if the fact is new."""
        existing = self._derivations.get(fact)
        if existing is None:
            self._derivations[fact] = {derivation}
            new = True
        else:
            before = len(existing)
            existing.add(derivation)
            if len(existing) == before:
                return False
            new = False
        supports = self._supports
        if supports is not None:
            for body_fact in derivation.body_facts:
                deps = supports.get(body_fact)
                if deps is None:
                    supports[body_fact] = {fact}
                else:
                    deps.add(fact)
        return new

    def supporters(self, fact: FactKey) -> Set[FactKey]:
        """Facts with at least one derivation through ``fact`` (treat the
        returned set as read-only)."""
        return self._support_index().get(fact, set())

    def remove_derivation(self, fact: FactKey, derivation: Derivation) -> bool:
        """Subtract one derivation from ``fact``'s set (Section IV-B).

        Returns True when the set became empty (the fact must be
        deleted).  Subtracting an absent derivation is a no-op.
        """
        derivs = self._derivations.get(fact)
        if derivs is None or derivation not in derivs:
            return False
        derivs.discard(derivation)
        if self._supports is not None:
            for body_fact in derivation.body_facts:
                if not any(d.uses(body_fact) for d in derivs):
                    deps = self._supports.get(body_fact)
                    if deps is not None:
                        deps.discard(fact)
        if derivs:
            return False
        del self._derivations[fact]
        return True

    def remove_support(self, removed: FactKey) -> List[FactKey]:
        """Delete every derivation that uses ``removed``; return the facts
        whose derivation sets became empty (they must now be deleted)."""
        supports = self._support_index()
        emptied: List[FactKey] = []
        for dependent in list(supports.get(removed, ())):
            derivs = self._derivations.get(dependent)
            if derivs is None:
                continue
            kept = {d for d in derivs if not d.uses(removed)}
            if kept:
                self._derivations[dependent] = kept
            else:
                del self._derivations[dependent]
                emptied.append(dependent)
        supports.pop(removed, None)
        return emptied

    def discard_fact(self, fact: FactKey) -> None:
        """Forget a fact entirely (used when the fact is deleted)."""
        derivs = self._derivations.pop(fact, None)
        if derivs and self._supports is not None:
            for d in derivs:
                for body_fact in d.body_facts:
                    deps = self._supports.get(body_fact)
                    if deps is not None:
                        deps.discard(fact)

    def derivations_of(self, fact: FactKey) -> FrozenSet[Derivation]:
        return frozenset(self._derivations.get(fact, ()))

    def has_fact(self, fact: FactKey) -> bool:
        return fact in self._derivations

    def facts(self) -> Iterator[FactKey]:
        return iter(self._derivations)

    def __len__(self) -> int:
        return len(self._derivations)


class ProofNode:
    """A node of a proof tree: a fact plus the sub-proofs of the body
    facts of one of its derivations (base facts are leaves)."""

    def __init__(self, fact: FactKey, rule_id: Optional[int], children: List["ProofNode"]):
        self.fact = fact
        self.rule_id = rule_id
        self.children = children

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def facts(self) -> Iterator[FactKey]:
        yield self.fact
        for child in self.children:
            yield from child.facts()

    def __repr__(self) -> str:
        pred, args = self.fact
        head = f"{pred}{tuple(map(repr, args))}"
        if self.is_leaf:
            return head
        return f"{head} <- [{', '.join(repr(c) for c in self.children)}]"


def build_proof_tree(
    store: DerivationStore, fact: FactKey, _path: Optional[Set[FactKey]] = None
) -> Optional[ProofNode]:
    """Unfold derivations into a proof tree with base facts at the leaves.

    Returns ``None`` when no valid (acyclic) proof exists — the situation
    Section IV-C warns about for general recursive programs, where a
    non-empty derivation set does not imply a valid proof tree.
    """
    if _path is None:
        _path = set()
    if fact in _path:
        return None  # directed cycle: not a valid proof
    if not store.has_fact(fact):
        return ProofNode(fact, None, [])  # base fact
    _path = _path | {fact}
    for derivation in store.derivations_of(fact):
        children = []
        for body_fact in derivation.body_facts:
            child = build_proof_tree(store, body_fact, _path)
            if child is None:
                break
            children.append(child)
        else:
            return ProofNode(fact, derivation.rule_id, children)
    return None


def is_locally_nonrecursive(store: DerivationStore) -> bool:
    """Runtime check for local non-recursion: no directed cycles in the
    tuple-level derivation graph (Section IV-C, [6])."""
    graph: Dict[FactKey, Set[FactKey]] = {}
    for fact in store.facts():
        deps: Set[FactKey] = set()
        for derivation in store.derivations_of(fact):
            deps.update(derivation.body_facts)
        graph[fact] = deps

    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[FactKey, int] = {}

    def visit(node: FactKey) -> bool:
        color[node] = GRAY
        for dep in graph.get(node, ()):
            state = color.get(dep, WHITE)
            if state == GRAY:
                return False
            if state == WHITE and not visit(dep):
                return False
        color[node] = BLACK
        return True

    return all(
        visit(node)
        for node in graph
        if color.get(node, WHITE) == WHITE
    )
