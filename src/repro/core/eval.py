"""Centralized bottom-up evaluation.

This module implements the reference semantics that the distributed
engine must agree with: naive and semi-naive fixpoints, stratified
negation, aggregates, and the stage-by-stage evaluation of
XY-stratified programs (Section IV-C).  The bottom-up approach is used
throughout because it is "amenable to incremental and asynchronous
distributed evaluation" (Section III).
"""

from __future__ import annotations

import gc
import itertools
from contextlib import contextmanager
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

from ..obs import instrument as _inst
from ..obs import state as _obs
from ..obs.spans import span as _span
from .ast import (
    Atom,
    BuiltinLiteral,
    Literal,
    Program,
    RelLiteral,
    Rule,
)
from .builtins import (
    BuiltinRegistry,
    DEFAULT_REGISTRY,
    eval_builtin,
    eval_term,
    normalize_partial,
    value_to_term,
)
from .columnar import GLOBAL_INTERNER as _INTERNER
from .derivations import CachedFactKey, Derivation, DerivationStore, FactKey
from .errors import EvaluationError, ProgramError
from .plan import (
    GLOBAL_PLAN_CACHE,
    CompiledPlan,
    PlanCache,
    compile_rule,
    engine_mode,
    order_body,
    rule_label,
    seed_engine,
    seed_mode,
    use_engine,
)
from .vector import execute_batch
from .safety import check_program_safety
from .stratify import (
    Analysis,
    ProgramClass,
    classify,
    dependency_graph,
    recursive_components,
)
from .terms import Constant, Substitution, Term, Variable, to_term
from .unify import match_sequences

ArgsTuple = Tuple[Term, ...]


class Relation:
    """A set of ground argument tuples, stored columnar.

    Storage is a row arena: every tuple added gets a dense row number,
    its terms are interned through :data:`repro.core.columnar.GLOBAL_INTERNER`
    and the resulting ids appended to per-position id columns.  Deletion
    tombstones the row (membership lives in the ``_row_of`` dict keyed
    by the term tuples themselves, so the tuple-level API below is
    exact).  The id columns feed the numpy batch kernels in
    :mod:`repro.core.vector` through version-keyed snapshot caches
    (:meth:`np_column` / :meth:`sorted_probe`).

    The tuple-level view keeps the pre-columnar contract unchanged:
    lazy per-position hash indexes (now id-keyed buckets of row numbers)
    built the first time a position is probed with a bound pattern
    argument, and *selectivity-aware* probes — when a pattern has
    several ground positions and more than one of them already has an
    index, the smallest bucket wins (an empty bucket short-circuits to
    no candidates at all)."""

    def __init__(self, name: str):
        self.name = name
        #: term tuple -> row number (live rows only; iteration order is
        #: insertion order, which callers treat as unordered).
        self._row_of: Dict[ArgsTuple, int] = {}
        #: row number -> term tuple (including tombstoned rows; the
        #: first-added instance is the canonical row value).
        self._terms_rows: List[ArgsTuple] = []
        #: per-position id columns (including tombstoned rows); None
        #: once rows of differing arity make the relation ragged.
        self._cols: Optional[List[List[int]]] = None
        self._arity: Optional[int] = None
        self._dead: Set[int] = set()
        #: position -> (id -> set of row numbers), built lazily.
        self._indexes: Dict[int, Dict[int, Set[int]]] = {}
        #: bumped on every mutation; keys the numpy snapshot caches.
        self._version = 0
        self._snapshots: Dict[object, Tuple[int, object]] = {}
        #: predicate -> row-aligned ``(pred, args)`` fact keys, grown
        #: lazily; batch emission reuses one key object per stored row.
        self._fact_keys: Dict[str, List[tuple]] = {}
        #: Number of index probes — a cheap work metric for the
        #: join-ordering experiments.
        self.probes = 0
        #: Number of full-relation scans (patterns with no ground
        #: position; counted separately from index probes).
        self.scans = 0

    def __len__(self) -> int:
        return len(self._row_of)

    def __iter__(self) -> Iterator[ArgsTuple]:
        return iter(self._row_of)

    def __contains__(self, args: ArgsTuple) -> bool:
        return args in self._row_of

    def add(self, args: ArgsTuple) -> bool:
        """Insert; returns True when the tuple is new."""
        return self.add_row(args)[0]

    def add_row(self, args: ArgsTuple) -> Tuple[bool, int]:
        """Insert; returns ``(is_new, canonical row number)`` so hot
        loops can reach the stored row without a second lookup."""
        row = self._row_of.get(args)
        if row is not None:
            return False, row
        row = len(self._terms_rows)
        intern = _INTERNER.intern
        ids = [intern(t) for t in args]
        if row == 0 and self._arity is None:
            self._arity = len(args)
            self._cols = [[] for _ in args]
        if self._cols is not None:
            if len(args) == self._arity:
                for col, tid in zip(self._cols, ids):
                    col.append(tid)
            else:
                # Mixed arities: drop the columnar mirror; the batch
                # kernels fall back to the tuple executor for this
                # relation.
                self._cols = None
        self._row_of[args] = row
        self._terms_rows.append(args)
        for pos, index in self._indexes.items():
            if pos < len(ids):
                index.setdefault(ids[pos], set()).add(row)
        self._version += 1
        return True, row

    def discard(self, args: ArgsTuple) -> bool:
        """Remove; returns True when the tuple was present."""
        row = self._row_of.pop(args, None)
        if row is None:
            return False
        self._dead.add(row)
        if self._indexes:
            get_id = _INTERNER.get
            for pos, index in self._indexes.items():
                if pos < len(args):
                    tid = get_id(args[pos])
                    bucket = index.get(tid)
                    if bucket is not None:
                        bucket.discard(row)
                        if not bucket:
                            del index[tid]
        self._version += 1
        return True

    def _index_for(self, pos: int) -> Dict[int, Set[int]]:
        index = self._indexes.get(pos)
        if index is None:
            index = {}
            intern = _INTERNER.intern
            for args, row in self._row_of.items():
                if pos < len(args):
                    index.setdefault(intern(args[pos]), set()).add(row)
            self._indexes[pos] = index
        return index

    def candidates(self, pattern: Sequence[Term], subst: Substitution) -> Iterable[ArgsTuple]:
        """Tuples that could match ``pattern`` under ``subst`` — probes
        the smallest index bucket among the ground pattern positions
        (falling back to a full scan when none is ground)."""
        self.probes += 1
        bound: List[Tuple[int, Term]] = []
        for pos, arg in enumerate(pattern):
            term = arg.substitute(subst)
            if term.is_ground():
                bound.append((pos, term))
        if not bound:
            return self._row_of
        return self._select_bucket(bound)

    def lookup(self, bound: Sequence[Tuple[int, Term]]) -> Iterable[ArgsTuple]:
        """Candidates for a probe with known ground positions
        ``[(position, ground term), ...]`` (must be non-empty).  Counts
        one index probe and picks the smallest bucket across built
        indexes."""
        self.probes += 1
        return self._select_bucket(bound)

    def scan(self) -> Tuple[ArgsTuple, ...]:
        """A snapshot of the full relation (safe to iterate while the
        relation grows).  Counts a scan, not an index probe."""
        self.scans += 1
        return tuple(self._row_of)

    def _select_bucket(self, bound: Sequence[Tuple[int, Term]]) -> Iterable[ArgsTuple]:
        get_id = _INTERNER.get
        rows = self._terms_rows
        best = None
        for pos, term in bound:
            index = self._indexes.get(pos)
            if index is None:
                continue
            tid = get_id(term)
            bucket = index.get(tid) if tid is not None else None
            if bucket is None:
                # An index exists and has no entry for this value: the
                # relation cannot match, whatever the other positions say.
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        if best is not None:
            return [rows[i] for i in best]
        pos, term = bound[0]
        index = self._index_for(pos)
        tid = get_id(term)
        bucket = index.get(tid) if tid is not None else None
        if bucket is None:
            return ()
        return [rows[i] for i in bucket]

    # -- columnar view (consumed by repro.core.vector) -------------------

    @property
    def arity(self) -> Optional[int]:
        """Uniform row arity, or None while empty."""
        return self._arity

    @property
    def ragged(self) -> bool:
        """True once rows of differing arity broke the columnar mirror."""
        return self._arity is not None and self._cols is None

    @property
    def terms_rows(self) -> List[ArgsTuple]:
        """Row number -> canonical term tuple (tombstones included)."""
        return self._terms_rows

    def _snapshot(self, key, build):
        cached = self._snapshots.get(key)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        value = build()
        self._snapshots[key] = (self._version, value)
        return value

    def fact_keys(self, pred: str) -> List[tuple]:
        """Row-aligned ``(pred, args)`` fact keys (tombstones included),
        extended lazily as rows are added.  Rows are append-only, so the
        prefix built on earlier calls stays valid; sharing one key object
        per row keeps batch emission from re-allocating (and the
        derivation store from re-hashing) the same key thousands of
        times."""
        keys = self._fact_keys.get(pred)
        if keys is None:
            keys = self._fact_keys[pred] = []
        rows = self._terms_rows
        if len(keys) < len(rows):
            keys.extend(
                CachedFactKey((pred, args)) for args in rows[len(keys):]
            )
        return keys

    def np_column(self, pos: int):
        """Id column ``pos`` as an int64 array (tombstones included)."""
        import numpy as np

        return self._snapshot(
            ("col", pos),
            lambda: np.array(self._cols[pos], dtype=np.int64),
        )

    def live_rows(self):
        """Live row numbers as an int64 array."""
        import numpy as np

        def build():
            if not self._dead:
                return np.arange(len(self._terms_rows), dtype=np.int64)
            return np.fromiter(
                self._row_of.values(), dtype=np.int64, count=len(self._row_of)
            )

        return self._snapshot("live", build)

    def sorted_probe(self, pos: int):
        """``(sorted ids, row numbers in that order)`` over live rows —
        the probe side of the vectorized searchsorted join."""
        import numpy as np

        def build():
            live = self.live_rows()
            vals = self.np_column(pos)[live]
            order = np.argsort(vals, kind="stable")
            return vals[order], live[order]

        return self._snapshot(("sorted", pos), build)


class Database:
    """Predicate name → :class:`Relation`, plus a derivation store for
    the tuples the evaluator derives."""

    def __init__(self, registry: BuiltinRegistry = DEFAULT_REGISTRY):
        self.registry = registry
        self._relations: Dict[str, Relation] = {}
        self.derivations = DerivationStore()

    def relation(self, predicate: str) -> Relation:
        rel = self._relations.get(predicate)
        if rel is None:
            rel = Relation(predicate)
            self._relations[predicate] = rel
        return rel

    def assert_fact(self, predicate: str, args: Iterable) -> bool:
        """Insert a base fact; Python values are coerced to terms."""
        terms = tuple(to_term(a) for a in args)
        for t in terms:
            if not t.is_ground():
                raise EvaluationError(f"fact argument {t!r} is not ground")
        return self.relation(predicate).add(terms)

    def assert_atom(self, atom: Atom) -> bool:
        if not atom.is_ground():
            raise EvaluationError(f"fact {atom!r} is not ground")
        return self.relation(atom.predicate).add(atom.args)

    def retract_fact(self, predicate: str, args: Iterable) -> bool:
        terms = tuple(to_term(a) for a in args)
        return self.relation(predicate).discard(terms)

    def contains(self, predicate: str, args: Iterable) -> bool:
        terms = tuple(to_term(a) for a in args)
        return terms in self.relation(predicate)

    def rows(self, predicate: str) -> Set[Tuple]:
        """Relation contents as Python values (for assertions/reports).

        Cons-lists come back as (hashable) tuples; uninterpreted terms
        come back as Terms.
        """
        return {
            tuple(_freeze_value(eval_term(t, self.registry)) for t in args)
            for args in self.relation(predicate)
        }

    def predicates(self) -> List[str]:
        return sorted(self._relations)

    def count(self, predicate: str) -> int:
        return len(self.relation(predicate))

    def copy(self) -> "Database":
        clone = Database(self.registry)
        for name, rel in self._relations.items():
            target = clone.relation(name)
            for args in rel:
                target.add(args)
        return clone


def _freeze_value(value):
    """Recursively convert lists to tuples so row values are hashable."""
    if isinstance(value, list):
        return tuple(_freeze_value(v) for v in value)
    return value


#: Telemetry label helper (shared with the plan layer).
_rule_label = rule_label


def _total_probes(db: Database) -> int:
    return sum(rel.probes for rel in db._relations.values())


def _total_scans(db: Database) -> int:
    return sum(rel.scans for rel in db._relations.values())


# ---------------------------------------------------------------------------
# Rule enumeration
# ---------------------------------------------------------------------------
#
# ``order_body`` lives in :mod:`repro.core.plan` now (re-exported above):
# the compiled-plan layer computes each rule's ordering exactly once and
# the evaluators reach it through :data:`GLOBAL_PLAN_CACHE`.


def enumerate_rule(
    rule: Rule,
    db: Database,
    registry: BuiltinRegistry,
    delta_pred: Optional[str] = None,
    delta_tuples: Optional[Set[ArgsTuple]] = None,
    delta_occurrence: Optional[int] = None,
    initial_subst: Optional[Substitution] = None,
) -> Iterator[Tuple[Substitution, List[FactKey]]]:
    """Enumerate satisfying substitutions of ``rule``'s body.

    When ``delta_pred`` is given, the ``delta_occurrence``-th positive
    occurrence of that predicate ranges over ``delta_tuples`` instead of
    the stored relation (the semi-naive rewriting).  Yields the
    substitution and the list of positive facts used (the derivation).

    Evaluation normally runs through the compiled plan of the rule
    (cached in :data:`GLOBAL_PLAN_CACHE`); inside a
    :func:`repro.core.plan.seed_engine` block the original recursive
    enumerator below is used instead.
    """
    if seed_mode():
        return enumerate_rule_recursive(
            rule, db, registry, delta_pred, delta_tuples,
            delta_occurrence, initial_subst,
        )
    return GLOBAL_PLAN_CACHE.get(rule).execute(
        db, registry,
        delta_pred=delta_pred,
        delta_tuples=delta_tuples,
        delta_occurrence=delta_occurrence,
        initial_subst=initial_subst,
    )


def enumerate_rule_recursive(
    rule: Rule,
    db: Database,
    registry: BuiltinRegistry,
    delta_pred: Optional[str] = None,
    delta_tuples: Optional[Set[ArgsTuple]] = None,
    delta_occurrence: Optional[int] = None,
    initial_subst: Optional[Substitution] = None,
) -> Iterator[Tuple[Substitution, List[FactKey]]]:
    """The seed recursive enumerator: re-derives the body ordering per
    call and probes through :meth:`Relation.candidates`.  Kept as the
    reference implementation for differential tests and benchmark
    baselines (see :func:`repro.core.plan.seed_engine`)."""
    ordered = order_body(rule)
    occurrence_counter = itertools.count()
    occurrence_of: Dict[int, int] = {}
    for i, lit in enumerate(ordered):
        if isinstance(lit, RelLiteral) and not lit.negated and lit.predicate == delta_pred:
            occurrence_of[i] = next(occurrence_counter)

    def recurse(
        idx: int, subst: Substitution, used: List[FactKey]
    ) -> Iterator[Tuple[Substitution, List[FactKey]]]:
        if idx == len(ordered):
            yield subst, list(used)
            return
        lit = ordered[idx]
        if isinstance(lit, BuiltinLiteral):
            for s2 in eval_builtin(lit, subst, registry):
                yield from recurse(idx + 1, s2, used)
            return
        assert isinstance(lit, RelLiteral)
        rel = db.relation(lit.predicate)
        pattern = tuple(
            normalize_partial(arg.substitute(subst), registry)
            for arg in lit.atom.args
        )
        empty = Substitution()
        if lit.negated:
            exists = any(
                match_sequences(pattern, row, empty) is not None
                for row in rel.candidates(pattern, empty)
            )
            if not exists:
                yield from recurse(idx + 1, subst, used)
            return
        if (
            delta_pred is not None
            and lit.predicate == delta_pred
            and occurrence_of.get(idx) == delta_occurrence
        ):
            rows: Iterable[ArgsTuple] = delta_tuples or ()
        else:
            rows = rel.candidates(pattern, empty)
        for row in rows:
            bindings = match_sequences(pattern, row, empty)
            if bindings is None:
                continue
            s2 = Substitution(subst)
            s2.update(bindings)
            used.append((lit.predicate, row))
            yield from recurse(idx + 1, s2, used)
            used.pop()

    yield from recurse(0, Substitution(initial_subst or {}), [])


def ground_head(rule: Rule, subst: Substitution, registry: BuiltinRegistry) -> ArgsTuple:
    """Instantiate and normalize the head arguments (evaluating any
    arithmetic such as ``d + 1``)."""
    out = []
    for arg in rule.head.args:
        bound = arg.substitute(subst)
        if not bound.is_ground():
            raise EvaluationError(
                f"head of {rule!r} not ground under {dict(subst)!r}"
            )
        out.append(value_to_term(eval_term(bound, registry)))
    return tuple(out)


#: Deltas smaller than this run tuple-at-a-time even under the columnar
#: engine: the numpy kernels' per-call overhead beats Python loops only
#: once a few rows amortize it (the incremental evaluator's
#: one-tuple-at-a-time deltas stay on the tuple path).
_MIN_BATCH = 4


def fire_rule(
    rule: Rule,
    db: Database,
    registry: BuiltinRegistry,
    **delta_kwargs,
) -> Iterator[Tuple[ArgsTuple, Derivation]]:
    """Yield (head tuple, derivation) for every body match.

    Under the ``columnar`` engine, vectorizable rules run through the
    numpy batch executor (:mod:`repro.core.vector`); everything else —
    other engines, rules the analyzer rejected, calls the kernels bail
    out of at runtime, tiny deltas — takes the tuple-at-a-time path
    below, with identical results.
    """
    if engine_mode() == "columnar" and "initial_subst" not in delta_kwargs:
        plan = GLOBAL_PLAN_CACHE.get(rule)
        program = plan.batch_program()
        if program is not None:
            delta_tuples = delta_kwargs.get("delta_tuples")
            if delta_tuples is None or len(delta_tuples) >= _MIN_BATCH:
                results = execute_batch(
                    plan, program, db, registry,
                    delta_pred=delta_kwargs.get("delta_pred"),
                    delta_tuples=delta_tuples,
                    delta_occurrence=delta_kwargs.get("delta_occurrence"),
                )
                if results is not None:
                    return iter(results)
    return _fire_rule_tuples(rule, db, registry, **delta_kwargs)


def _fire_rule_tuples(
    rule: Rule,
    db: Database,
    registry: BuiltinRegistry,
    **delta_kwargs,
) -> Iterator[Tuple[ArgsTuple, Derivation]]:
    for subst, used in enumerate_rule(rule, db, registry, **delta_kwargs):
        head = ground_head(rule, subst, registry)
        yield head, Derivation(rule.rule_id if rule.rule_id is not None else -1, used)


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


def evaluate_aggregate_rule(
    rule: Rule, db: Database, registry: BuiltinRegistry
) -> Iterator[ArgsTuple]:
    """Evaluate a rule with head aggregates over the (final) body
    relations using all-solutions semantics: distinct variable
    valuations of the body are the multiset being aggregated."""
    agg_positions = {spec.position for spec in rule.aggregates}
    groups: Dict[Tuple, Dict[int, List]] = {}
    seen_valuations: Dict[Tuple, Set[Tuple]] = {}
    body_vars = sorted(rule.variables(), key=lambda v: v.name)

    for subst, _used in enumerate_rule(rule, db, registry):
        key_parts = []
        for i, arg in enumerate(rule.head.args):
            if i in agg_positions:
                continue
            key_parts.append(value_to_term(eval_term(arg.substitute(subst), registry)))
        key = tuple(key_parts)
        valuation = tuple(
            repr(subst.resolve(v)) for v in body_vars if not v.is_anonymous
        )
        bucket = seen_valuations.setdefault(key, set())
        if valuation in bucket:
            continue
        bucket.add(valuation)
        per_spec = groups.setdefault(key, {spec.position: [] for spec in rule.aggregates})
        for spec in rule.aggregates:
            if spec.var is None:
                per_spec[spec.position].append(1)
            else:
                value = eval_term(spec.var.substitute(subst), registry)
                per_spec[spec.position].append(value)

    for key, per_spec in groups.items():
        args: List[Term] = []
        key_iter = iter(key)
        for i in range(rule.head.arity):
            if i in agg_positions:
                spec = next(s for s in rule.aggregates if s.position == i)
                args.append(value_to_term(_apply_aggregate(spec.function, per_spec[i])))
            else:
                args.append(next(key_iter))
        yield tuple(args)


def _apply_aggregate(function: str, values: List) -> object:
    if not values:
        raise EvaluationError("aggregate over empty group")
    if function == "count":
        return len(values)
    if function == "sum":
        return sum(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    if function == "avg":
        return sum(values) / len(values)
    raise EvaluationError(f"unknown aggregate {function!r}")


# ---------------------------------------------------------------------------
# Evaluators
# ---------------------------------------------------------------------------


@contextmanager
def _gc_paused():
    """Pause the cyclic garbage collector for the span of a fixpoint.

    The fixpoint loops allocate heavily (head tuples, derivations, fact
    keys) but create no reference cycles — everything is reclaimed by
    reference counting the moment it dies.  Left enabled, the collector
    re-scans the ever-growing derivation store on every full pass, a
    measurable superlinear drag on large evaluations (1.4x wall time on
    the E17 transitive-closure workload).  Nested evaluations see the
    collector already off and leave it alone.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


class SemiNaiveEvaluator:
    """Stratified semi-naive bottom-up evaluation.

    Handles non-recursive programs, positive recursion, stratified
    negation and head aggregates.  Records derivations in
    ``db.derivations`` so the incremental maintainer can run afterwards.
    """

    def __init__(
        self,
        program: Program,
        registry: Optional[BuiltinRegistry] = None,
        record_derivations: bool = True,
        max_facts: Optional[int] = None,
    ):
        self.program = program
        self.registry = registry or DEFAULT_REGISTRY
        self.record_derivations = record_derivations
        # Function symbols make recursion potentially non-terminating
        # (Section IV-C warns about this); the guard turns an infinite
        # fixpoint into a diagnosable error.
        self.max_facts = max_facts
        check_program_safety(program)
        self.analysis = classify(program)
        if self.analysis.strata is None:
            raise ProgramError(
                "SemiNaiveEvaluator requires a stratified program; "
                f"got {self.analysis.program_class.value}"
            )

    def evaluate(self, db: Database) -> Database:
        """Evaluate the program to fixpoint over ``db`` (mutated in place,
        also returned for chaining)."""
        if not _obs.enabled:
            with _gc_paused():
                for fact in self.program.facts:
                    db.assert_atom(fact)
                for stratum in self.analysis.strata:
                    self._evaluate_stratum(db, stratum)
            return db
        probes_before = _total_probes(db)
        scans_before = _total_scans(db)
        with _span("eval.fixpoint", evaluator="semi-naive",
                   rules=len(self.program.rules)) as sp, _gc_paused():
            for fact in self.program.facts:
                db.assert_atom(fact)
            for stratum in self.analysis.strata:
                with _span("eval.stratum", predicates=sorted(stratum)):
                    self._evaluate_stratum(db, stratum)
            probes = _total_probes(db) - probes_before
            scans = _total_scans(db) - scans_before
            _inst.join_probes.inc(probes)
            _inst.relation_scans.inc(scans)
            sp.set(join_probes=probes, relation_scans=scans)
        return db

    def _evaluate_stratum(self, db: Database, stratum: Set[str]) -> None:
        rules = [
            r for r in self.program.rules
            if r.head.predicate in stratum and not r.has_aggregates
        ]
        agg_rules = [
            r for r in self.program.rules
            if r.head.predicate in stratum and r.has_aggregates
        ]
        # Aggregate rules first: stratification guarantees their body
        # predicates live in strictly lower strata, hence are final.
        for rule in agg_rules:
            rel = db.relation(rule.head.predicate)
            for head in evaluate_aggregate_rule(rule, db, self.registry):
                rel.add(head)

        # With compiled plans, firings stream straight out of the
        # executor (which snapshots its row sources, so the relations
        # may grow mid-enumeration); the seed engine needs the eager
        # materialization it shipped with.
        eager = seed_mode()
        plans: Optional[List[CompiledPlan]] = (
            None if eager else [GLOBAL_PLAN_CACHE.get(r) for r in rules]
        )

        # Initial round: full naive evaluation of this stratum's rules.
        deltas: Dict[str, Set[ArgsTuple]] = {}
        rounds = 1
        for rule in rules:
            head_pred = rule.head.predicate
            rel = db.relation(head_pred)
            fired = added = 0
            firings = fire_rule(rule, db, self.registry)
            if eager:
                firings = iter(list(firings))
            record = self.record_derivations
            derivs_add = db.derivations.add
            add_row = rel.add_row
            keys = rel.fact_keys(head_pred) if record else None
            delta_set = None
            for head, derivation in firings:
                fired += 1
                is_new, row = add_row(head)
                if record:
                    if row >= len(keys):
                        keys.append(CachedFactKey((head_pred, head)))
                    derivs_add(keys[row], derivation)
                if is_new:
                    added += 1
                    if delta_set is None:
                        delta_set = deltas.setdefault(head_pred, set())
                    delta_set.add(head)
            if _obs.enabled and fired:
                label = _rule_label(rule)
                _inst.rule_firings.labels(rule=label).inc(fired)
                _inst.rule_derived.labels(rule=label).inc(added)
        if _obs.enabled:
            for pred, delta in deltas.items():
                _inst.delta_size.labels(predicate=pred).observe(len(delta))

        # The max_facts guard accumulates additions incrementally rather
        # than re-summing every IDB relation each round.
        idb_total = None
        if self.max_facts is not None:
            idb_total = sum(db.count(p) for p in self.program.idb_predicates())

        # Semi-naive rounds: every occurrence of a predicate that grew in
        # the previous round ranges over that growth (the delta).  This
        # covers both recursion and same-stratum chains such as
        # traj -> completetraj -> parallel.
        while deltas:
            if idb_total is not None and idb_total > self.max_facts:
                raise EvaluationError(
                    f"fixpoint exceeded max_facts={self.max_facts} "
                    "(non-terminating recursion through function "
                    "symbols?)"
                )
            new_deltas: Dict[str, Set[ArgsTuple]] = {}
            rounds += 1
            round_added = 0
            for i, rule in enumerate(rules):
                if plans is not None:
                    # Skip (rule, delta_pred) pairs outright when the
                    # plan says the rule never reads the delta predicate.
                    occurrences = plans[i].occurrences
                    pairs = [
                        (pred, delta, len(occurrences[pred]))
                        for pred, delta in deltas.items()
                        if pred in occurrences
                    ]
                    if not pairs:
                        continue
                else:
                    pairs = [
                        (
                            pred,
                            delta,
                            sum(
                                1 for lit in rule.positive_literals()
                                if lit.predicate == pred
                            ),
                        )
                        for pred, delta in deltas.items()
                    ]
                head_pred = rule.head.predicate
                rel = db.relation(head_pred)
                fired = added = 0
                record = self.record_derivations
                derivs_add = db.derivations.add
                add_row = rel.add_row
                keys = rel.fact_keys(head_pred) if record else None
                delta_set = None
                for pred, delta, n_occ in pairs:
                    for occ in range(n_occ):
                        firings = fire_rule(
                            rule,
                            db,
                            self.registry,
                            delta_pred=pred,
                            delta_tuples=delta,
                            delta_occurrence=occ,
                        )
                        if eager:
                            firings = iter(list(firings))
                        for head, derivation in firings:
                            fired += 1
                            is_new, row = add_row(head)
                            if record:
                                if row >= len(keys):
                                    keys.append(
                                        CachedFactKey((head_pred, head))
                                    )
                                derivs_add(keys[row], derivation)
                            if is_new:
                                added += 1
                                if delta_set is None:
                                    delta_set = new_deltas.setdefault(
                                        head_pred, set()
                                    )
                                delta_set.add(head)
                round_added += added
                if _obs.enabled and fired:
                    label = _rule_label(rule)
                    _inst.rule_firings.labels(rule=label).inc(fired)
                    _inst.rule_derived.labels(rule=label).inc(added)
            if _obs.enabled:
                for pred, delta in new_deltas.items():
                    _inst.delta_size.labels(predicate=pred).observe(len(delta))
            if idb_total is not None:
                idb_total += round_added
            deltas = new_deltas
        if _obs.enabled:
            _inst.fixpoint_iterations.labels(evaluator="semi-naive").observe(rounds)


class XYEvaluator:
    """Stage-by-stage evaluation of XY-stratified programs.

    Recursive components that mix recursion and negation are evaluated
    stage by stage in ascending stage order (the sub-table topological
    order of Section IV-C); within a stage, predicates are saturated in
    the per-stage priority order (e.g. ``H'`` before ``H``).  The rest
    of the program is evaluated stratum-wise around the components.
    """

    def __init__(
        self,
        program: Program,
        registry: Optional[BuiltinRegistry] = None,
        max_stages: int = 100_000,
    ):
        self.program = program
        self.registry = registry or DEFAULT_REGISTRY
        self.max_stages = max_stages
        check_program_safety(program)
        self.analysis = classify(program)
        if self.analysis.program_class == ProgramClass.XY_STRATIFIED:
            self.xy = self.analysis.xy
        elif self.analysis.strata is not None:
            self.xy = None  # plain stratified program also accepted
        else:
            raise ProgramError("program is not XY-stratified")

    def evaluate(self, db: Database) -> Database:
        for fact in self.program.facts:
            db.assert_atom(fact)
        if self.xy is None:
            return SemiNaiveEvaluator(self.program, self.registry).evaluate(db)
        if not _obs.enabled:
            with _gc_paused():
                return self._evaluate_xy(db)
        probes_before = _total_probes(db)
        scans_before = _total_scans(db)
        with _span("eval.fixpoint", evaluator="xy",
                   rules=len(self.program.rules)) as sp, _gc_paused():
            self._evaluate_xy(db)
            probes = _total_probes(db) - probes_before
            scans = _total_scans(db) - scans_before
            _inst.join_probes.inc(probes)
            _inst.relation_scans.inc(scans)
            sp.set(join_probes=probes, relation_scans=scans)
        return db

    def _evaluate_xy(self, db: Database) -> Database:
        graph = dependency_graph(self.program)
        components = [
            comp for comp in recursive_components(self.program)
            if any(
                graph[u][v]["negative"]
                for u in comp for v in comp if graph.has_edge(u, v)
            )
        ]
        in_component: Dict[str, int] = {}
        for i, comp in enumerate(components):
            for pred in comp:
                in_component[pred] = i

        # Build a super-graph over {component nodes} ∪ {plain predicates}
        # and evaluate in topological order.
        super_graph = nx.DiGraph()
        def node_of(pred: str):
            return ("C", in_component[pred]) if pred in in_component else ("P", pred)

        for pred in self.program.predicates():
            super_graph.add_node(node_of(pred))
        for u, v in graph.edges():
            nu, nv = node_of(u), node_of(v)
            if nu != nv:
                super_graph.add_edge(nu, nv)
        for node in nx.topological_sort(super_graph):
            kind, payload = node
            if kind == "C":
                self._evaluate_component(db, components[payload])
            else:
                self._evaluate_plain(db, payload)
        return db

    def _evaluate_plain(self, db: Database, predicate: str) -> None:
        rules = self.program.rules_for(predicate)
        rel = db.relation(predicate)
        for rule in rules:
            if rule.has_aggregates:
                for head in evaluate_aggregate_rule(rule, db, self.registry):
                    rel.add(head)
        changed = True
        while changed:
            changed = False
            for rule in rules:
                if rule.has_aggregates:
                    continue
                fired = added = 0
                firings = fire_rule(rule, db, self.registry)
                if seed_mode():
                    firings = iter(list(firings))
                derivs_add = db.derivations.add
                add_row = rel.add_row
                keys = rel.fact_keys(predicate)
                for head, derivation in firings:
                    fired += 1
                    is_new, row = add_row(head)
                    if row >= len(keys):
                        keys.append(CachedFactKey((predicate, head)))
                    derivs_add(keys[row], derivation)
                    if is_new:
                        added += 1
                        changed = True
                if _obs.enabled and fired:
                    label = _rule_label(rule)
                    _inst.rule_firings.labels(rule=label).inc(fired)
                    _inst.rule_derived.labels(rule=label).inc(added)

    def _stage_value(self, pred: str, args: ArgsTuple) -> object:
        pos = self.xy.stage_position[pred]
        return eval_term(args[pos], self.registry)

    def _evaluate_component(self, db: Database, comp: Set[str]) -> None:
        rules = [r for r in self.program.rules if r.head.predicate in comp]
        priority = self.xy.priority
        preds = sorted(comp, key=lambda p: priority.get(p, 0))

        # Seed stages: run every rule unrestricted once; heads found at
        # stage s become candidates (inserted only when stage s is
        # processed, so negation sees complete lower stages).
        pending_stages: Set[object] = set()
        for rule in rules:
            try:
                for head, _d in fire_rule(rule, db, self.registry):
                    pending_stages.add(self._stage_value(rule.head.predicate, head))
            except EvaluationError:
                continue

        processed: Set[object] = set()
        stages_done = 0
        while pending_stages:
            stage = min(pending_stages)  # ascending stage order
            pending_stages.discard(stage)
            if stage in processed:
                continue
            processed.add(stage)
            stages_done += 1
            if stages_done > self.max_stages:
                raise EvaluationError(
                    f"XY evaluation exceeded {self.max_stages} stages "
                    "(non-terminating program?)"
                )
            self._saturate_stage(db, comp, preds, rules, stage, pending_stages, processed)
        if _obs.enabled:
            _inst.fixpoint_iterations.labels(evaluator="xy").observe(stages_done)

    def _saturate_stage(
        self,
        db: Database,
        comp: Set[str],
        preds: List[str],
        rules: List[Rule],
        stage: object,
        pending_stages: Set[object],
        processed: Set[object],
    ) -> None:
        changed = True
        while changed:
            changed = False
            for pred in preds:
                rel = db.relation(pred)
                for rule in rules:
                    if rule.head.predicate != pred:
                        continue
                    fired = added = 0
                    firings = fire_rule(rule, db, self.registry)
                    if seed_mode():
                        firings = iter(list(firings))
                    derivs_add = db.derivations.add
                    add_row = rel.add_row
                    keys = rel.fact_keys(pred)
                    for head, derivation in firings:
                        fired += 1
                        head_stage = self._stage_value(pred, head)
                        if head_stage == stage:
                            is_new, row = add_row(head)
                            if row >= len(keys):
                                keys.append(CachedFactKey((pred, head)))
                            derivs_add(keys[row], derivation)
                            if is_new:
                                added += 1
                                changed = True
                        elif head_stage > stage and head_stage not in processed:
                            pending_stages.add(head_stage)
                    if _obs.enabled and fired:
                        label = _rule_label(rule)
                        _inst.rule_firings.labels(rule=label).inc(fired)
                        _inst.rule_derived.labels(rule=label).inc(added)


def evaluate(
    program: Program,
    db: Optional[Database] = None,
    registry: Optional[BuiltinRegistry] = None,
) -> Database:
    """Evaluate ``program`` with the appropriate evaluator for its class.

    Stratified programs use the semi-naive evaluator; XY-stratified
    programs the stage evaluator.  Locally-non-recursive-only programs
    are rejected here (use the incremental evaluator, which verifies
    local non-recursion at runtime).
    """
    registry = registry or (db.registry if db is not None else DEFAULT_REGISTRY)
    if db is None:
        db = Database(registry)
    analysis = classify(program)
    if analysis.strata is not None:
        return SemiNaiveEvaluator(program, registry).evaluate(db)
    if analysis.program_class == ProgramClass.XY_STRATIFIED:
        return XYEvaluator(program, registry).evaluate(db)
    raise ProgramError(
        "program mixes recursion and negation beyond XY-stratification; "
        "only locally non-recursive execution may be possible "
        f"(classification: {analysis.program_class.value})"
    )
