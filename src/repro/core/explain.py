"""Plan explanation — a human-readable account of how a program will
be evaluated.

Surfaces what the analysis machinery decides silently: the safety
verdict, the program class, strata or stage arguments, per-rule join
order, and (optionally) the distributed phase parameters.  Used by the
shell's ``:explain`` command and handy in tests and notebooks.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import BuiltinLiteral, Program, RelLiteral
from .errors import ProgramError, SafetyError
from .eval import order_body
from .safety import check_rule_safety
from .stratify import ProgramClass, classify


def explain(program: Program) -> str:
    """Multi-line explanation of ``program``'s evaluation plan."""
    lines: List[str] = []
    lines.append(f"rules: {len(program.rules)}, facts: {len(program.facts)}")
    idb, edb = sorted(program.idb_predicates()), sorted(program.edb_predicates())
    lines.append(f"derived predicates (IDB): {', '.join(idb) or '(none)'}")
    lines.append(f"base streams (EDB): {', '.join(edb) or '(none)'}")

    unsafe = []
    for rule in program.rules:
        try:
            check_rule_safety(rule)
        except SafetyError as exc:
            unsafe.append(str(exc))
    if unsafe:
        lines.append("UNSAFE:")
        lines.extend(f"  {msg}" for msg in unsafe)
        return "\n".join(lines)
    lines.append("safety: ok")

    analysis = classify(program)
    lines.append(f"class: {analysis.program_class.value}")
    if analysis.strata is not None:
        for i, stratum in enumerate(analysis.strata):
            lines.append(f"  stratum {i}: {', '.join(sorted(stratum))}")
    if analysis.xy is not None:
        stages = ", ".join(
            f"{p}[arg {pos}]" for p, pos in sorted(analysis.xy.stage_position.items())
        )
        lines.append(f"  stage arguments: {stages}")
        order = sorted(analysis.xy.priority, key=analysis.xy.priority.get)
        lines.append(f"  per-stage order: {' < '.join(order)}")
    if analysis.program_class is ProgramClass.LOCALLY_NONRECURSIVE_REQUIRED:
        lines.append(
            "  WARNING: only locally non-recursive executions are correct"
        )
        return "\n".join(lines)

    lines.append("join order:")
    for rule in program.rules:
        parts = []
        for lit in order_body(rule):
            if isinstance(lit, RelLiteral):
                parts.append(("not " if lit.negated else "") + lit.predicate)
            else:
                assert isinstance(lit, BuiltinLiteral)
                parts.append(f"[{lit.name}]")
        agg = " +agg" if rule.has_aggregates else ""
        lines.append(
            f"  r{rule.rule_id}: {rule.head.predicate} <- "
            f"{' , '.join(parts) or '(facts)'}{agg}"
        )
    return "\n".join(lines)


def explain_distributed(engine) -> str:
    """Explanation of a GPAEngine's deployment: strategy, timing
    constants and trigger table."""
    plan = engine.plan
    wp = engine.window_params
    lines = [
        f"strategy: {engine.strategy.name} (scheme: {engine.scheme})",
        f"window: {wp.window}, tau_s: {wp.tau_s:.4f}, "
        f"tau_c: {wp.tau_c:.4f}, tau_j: {wp.tau_j:.4f}",
        f"join-phase delay: {wp.join_delay:.4f}, "
        f"replica retention: {wp.storage_time:.4f}",
        "triggers:",
    ]
    preds = sorted(
        set(plan.positive_triggers) | set(plan.negative_triggers)
    )
    for pred in preds:
        pos = [rp.rule_id for rp, _ in plan.positive_triggers.get(pred, ())]
        neg = [rp.rule_id for rp, _ in plan.negative_triggers.get(pred, ())]
        detail = []
        if pos:
            detail.append(f"joins rules {pos}")
        if neg:
            detail.append(f"anti-joins rules {neg}")
        lines.append(f"  {pred}: {'; '.join(detail)}")
    return "\n".join(lines)
