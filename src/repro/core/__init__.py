"""Core deductive language: terms, rules, parsing, analysis, evaluation."""

from .ast import (
    AggregateSpec,
    Atom,
    BuiltinLiteral,
    Literal,
    Program,
    RelLiteral,
    Rule,
)
from .builtins import BuiltinRegistry, DEFAULT_REGISTRY, eval_term, value_to_term
from .derivations import (
    Derivation,
    DerivationStore,
    FactKey,
    ProofNode,
    build_proof_tree,
    is_locally_nonrecursive,
)
from .errors import (
    BuiltinError,
    EvaluationError,
    NetworkError,
    ParseError,
    PlanError,
    ProgramError,
    ReproError,
    SafetyError,
    StratificationError,
)
from .eval import (
    Database,
    Relation,
    SemiNaiveEvaluator,
    XYEvaluator,
    evaluate,
)
from .explain import explain, explain_distributed
from .optimizer import Statistics, optimize_program, optimize_rule
from .parser import parse_atom, parse_program, parse_rule, parse_term
from .topdown import TopDownEvaluator, top_down_query
from .safety import check_program_safety, check_rule_safety
from .stratify import (
    Analysis,
    ProgramClass,
    XYStratification,
    classify,
    dependency_graph,
    find_xy_stratification,
    is_recursive,
    recursive_components,
    stratify,
)
from .terms import (
    Constant,
    FunctionTerm,
    NIL,
    Substitution,
    Term,
    Variable,
    is_list_term,
    list_elements,
    make_list,
    term_size,
    to_term,
)
from .unify import match, match_sequences, unify, unify_sequences

__all__ = [
    "AggregateSpec", "Atom", "BuiltinLiteral", "Literal", "Program",
    "RelLiteral", "Rule", "BuiltinRegistry", "DEFAULT_REGISTRY",
    "eval_term", "value_to_term", "Derivation", "DerivationStore",
    "FactKey", "ProofNode", "build_proof_tree", "is_locally_nonrecursive",
    "BuiltinError", "EvaluationError", "NetworkError", "ParseError",
    "PlanError", "ProgramError", "ReproError", "SafetyError",
    "StratificationError", "explain", "explain_distributed",
    "Statistics", "optimize_program",
    "optimize_rule", "TopDownEvaluator", "top_down_query",
    "Database", "Relation", "SemiNaiveEvaluator",
    "XYEvaluator", "evaluate", "parse_atom", "parse_program", "parse_rule",
    "parse_term", "check_program_safety", "check_rule_safety", "Analysis",
    "ProgramClass", "XYStratification", "classify", "dependency_graph",
    "find_xy_stratification", "is_recursive", "recursive_components",
    "stratify", "Constant", "FunctionTerm", "NIL", "Substitution", "Term",
    "Variable", "is_list_term", "list_elements", "make_list", "term_size",
    "to_term", "match", "match_sequences", "unify", "unify_sequences",
]
