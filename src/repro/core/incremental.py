"""Incremental view maintenance under insertions *and* deletions.

Section IV-A weighs three techniques for maintaining a derived result
when operand streams see deletions:

* **set-of-derivations** (the paper's choice) — store each derived
  tuple's full set of derivations; deletion subtracts derivation sets
  and deletes a tuple when its set empties.  No extra communication, a
  tolerable space overhead;
* **counting** [Gupta-Mumick-Subrahmanian] — store a multiplicity per
  derived tuple; rejected by the paper because fault-tolerant schemes
  duplicate result tuples non-deterministically, corrupting counts;
* **rederivation (DRed)** — over-delete everything the deleted tuple
  supported, then re-derive what survives; rejected because the
  re-derivation phase costs extra communication.

All three are implemented here (centrally) so benchmark E9 can compare
their maintenance work; the distributed engine builds on the
set-of-derivations evaluator.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from .ast import Program, RelLiteral, Rule
from .builtins import BuiltinRegistry, DEFAULT_REGISTRY, normalize_partial
from .derivations import Derivation, FactKey, is_locally_nonrecursive
from .errors import EvaluationError, ProgramError
from .eval import ArgsTuple, Database, enumerate_rule, fire_rule, ground_head
from .safety import check_program_safety
from .terms import Substitution, Term, to_term
from .unify import match_sequences


class MaintenanceStats:
    """Work counters for comparing maintenance strategies (bench E9)."""

    def __init__(self):
        self.rule_firings = 0
        self.facts_inserted = 0
        self.facts_deleted = 0
        self.derivations_added = 0
        self.derivations_subtracted = 0
        self.facts_overdeleted = 0
        self.facts_rederived = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in vars(self).items())
        return f"MaintenanceStats({inner})"


def _coerce(args: Iterable) -> ArgsTuple:
    return tuple(to_term(a) for a in args)


class IncrementalEvaluator:
    """Tuple-at-a-time incremental evaluation with set-of-derivations.

    Facts are pushed with :meth:`insert` / :meth:`delete`; each update
    is propagated to fixpoint before the call returns ("isolated
    updates" — the distributed engine adds the timestamp machinery that
    serializes simultaneous updates, Theorem 3).

    Supports any program whose execution is locally non-recursive
    (which includes all non-recursive and XY-stratified programs run
    over streams with strictly increasing stage values); call
    :meth:`verify_locally_nonrecursive` to check the runtime property.
    """

    def __init__(
        self,
        program: Program,
        registry: Optional[BuiltinRegistry] = None,
        db: Optional[Database] = None,
    ):
        check_program_safety(program)
        for rule in program.rules:
            if rule.has_aggregates:
                raise ProgramError(
                    "incremental evaluation does not support aggregate rules"
                )
        self.program = program
        self.registry = registry or DEFAULT_REGISTRY
        self.db = db if db is not None else Database(self.registry)
        self.idb = program.idb_predicates()
        self.stats = MaintenanceStats()
        self._queue: Deque[Tuple[str, str, ArgsTuple]] = deque()
        self._positive_rules: Dict[str, List[Rule]] = {}
        self._negative_rules: Dict[str, List[Tuple[Rule, int]]] = {}
        for rule in program.rules:
            for i, lit in enumerate(rule.body):
                if not isinstance(lit, RelLiteral):
                    continue
                if lit.negated:
                    self._negative_rules.setdefault(lit.predicate, []).append(
                        (rule, i)
                    )
                else:
                    rules = self._positive_rules.setdefault(lit.predicate, [])
                    if rule not in rules:
                        rules.append(rule)
        for fact in program.facts:
            self.insert(fact.predicate, fact.args)

    # -- public API ------------------------------------------------------

    def insert(self, predicate: str, args: Iterable) -> None:
        """Insert a base (or derived, for testing) fact and propagate."""
        self._queue.append(("insert", predicate, _coerce(args)))
        self._drain()

    def delete(self, predicate: str, args: Iterable) -> None:
        """Delete a fact and propagate retractions."""
        self._queue.append(("delete", predicate, _coerce(args)))
        self._drain()

    def rows(self, predicate: str):
        return self.db.rows(predicate)

    def verify_locally_nonrecursive(self) -> bool:
        """Runtime check: no cycles in the tuple-level derivation graph."""
        return is_locally_nonrecursive(self.db.derivations)

    # -- propagation -----------------------------------------------------

    def _drain(self) -> None:
        while self._queue:
            kind, pred, args = self._queue.popleft()
            if kind == "insert":
                self._apply_insert(pred, args)
            else:
                self._apply_delete(pred, args)

    def _apply_insert(self, pred: str, args: ArgsTuple) -> None:
        rel = self.db.relation(pred)
        if not rel.add(args):
            return  # duplicates are not generations (Section III-B)
        self.stats.facts_inserted += 1
        self._propagate_positive_insert(pred, args)
        self._propagate_negative(pred, args, subtract=True)

    def _propagate_positive_insert(self, pred: str, args: ArgsTuple) -> None:
        for rule in self._positive_rules.get(pred, ()):
            n_occ = sum(
                1 for lit in rule.positive_literals() if lit.predicate == pred
            )
            for occ in range(n_occ):
                # Streamed: firings only queue follow-up work, they never
                # mutate the relations the executor is reading.
                for head, derivation in fire_rule(
                    rule,
                    self.db,
                    self.registry,
                    delta_pred=pred,
                    delta_tuples={args},
                    delta_occurrence=occ,
                ):
                    self.stats.rule_firings += 1
                    self._add_derived(rule.head.predicate, head, derivation)

    def _add_derived(self, pred: str, args: ArgsTuple, derivation: Derivation) -> None:
        fact: FactKey = (pred, args)
        is_new = self.db.derivations.add(fact, derivation)
        self.stats.derivations_added += 1
        if is_new and args not in self.db.relation(pred):
            self._queue.append(("insert", pred, args))

    def _apply_delete(self, pred: str, args: ArgsTuple) -> None:
        rel = self.db.relation(pred)
        if not rel.discard(args):
            return
        self.stats.facts_deleted += 1
        fact: FactKey = (pred, args)
        # 1. Derivations that used this fact positively die with it.
        for emptied_pred, emptied_args in self.db.derivations.remove_support(fact):
            self._queue.append(("delete", emptied_pred, emptied_args))
        self.db.derivations.discard_fact(fact)
        # 2. Rules where this predicate appears negated may regain
        #    derivations now that the blocker is gone.
        self._propagate_negative(pred, args, subtract=False)

    def _propagate_negative(self, pred: str, args: ArgsTuple, subtract: bool) -> None:
        """Handle an update to a stream appearing as a *negated* subgoal.

        ``subtract=True`` for insertions (new blocker kills matching
        derivations), ``subtract=False`` for deletions (matching
        derivations may come back, re-checked against the post-deletion
        state — including the updated relation itself).
        """
        for rule, lit_index in self._negative_rules.get(pred, ()):
            neg_lit = rule.body[lit_index]
            assert isinstance(neg_lit, RelLiteral) and neg_lit.negated
            seed = match_sequences(neg_lit.atom.args, args, Substitution())
            if seed is None:
                continue
            remaining = tuple(
                lit for i, lit in enumerate(rule.body) if i != lit_index
            )
            reduced = Rule(rule.head, remaining, (), rule.rule_id)
            if not subtract:
                # Keep only bindings for variables the reduced rule
                # shares with the negated subgoal: variables local to
                # the subgoal (e.g. wildcards) must stay free so the
                # re-check below sees every still-standing blocker, not
                # just the tuple that was deleted.
                shared = reduced.variables()
                seed = Substitution(
                    {v: t for v, t in seed.items() if v in shared}
                )
            for subst, used in enumerate_rule(
                reduced, self.db, self.registry, initial_subst=seed
            ):
                self.stats.rule_firings += 1
                if not subtract and self._blocked(neg_lit, subst):
                    continue
                head = ground_head(reduced, subst, self.registry)
                derivation = Derivation(
                    rule.rule_id if rule.rule_id is not None else -1, used
                )
                head_fact: FactKey = (rule.head.predicate, head)
                if subtract:
                    self.stats.derivations_subtracted += 1
                    if self.db.derivations.remove_derivation(head_fact, derivation):
                        self._queue.append(("delete", rule.head.predicate, head))
                else:
                    self._add_derived(rule.head.predicate, head, derivation)

    def _blocked(self, neg_lit: RelLiteral, subst: Substitution) -> bool:
        """True when some stored tuple still satisfies the negated
        subgoal under ``subst`` (evaluated post-update)."""
        rel = self.db.relation(neg_lit.predicate)
        pattern = tuple(
            normalize_partial(arg.substitute(subst), self.registry)
            for arg in neg_lit.atom.args
        )
        empty = Substitution()
        return any(
            match_sequences(pattern, row, empty) is not None
            for row in rel.candidates(pattern, empty)
        )


class CountingEvaluator:
    """Counting-based maintenance [27]: a multiplicity per derived fact.

    Restricted to *non-recursive* programs (counts are ill-defined under
    recursion).  The paper rejects this approach for the network setting
    because fault-tolerant replication duplicates result tuples
    non-deterministically; centrally it is exact and cheap.
    """

    def __init__(
        self,
        program: Program,
        registry: Optional[BuiltinRegistry] = None,
    ):
        from .stratify import is_recursive

        check_program_safety(program)
        if is_recursive(program):
            raise ProgramError("counting maintenance requires a non-recursive program")
        for rule in program.rules:
            if rule.has_aggregates:
                raise ProgramError("counting maintenance does not support aggregates")
        self.program = program
        self.registry = registry or DEFAULT_REGISTRY
        self.db = Database(self.registry)
        self.counts: Dict[FactKey, int] = {}
        self.stats = MaintenanceStats()
        self._queue: Deque[Tuple[str, str, ArgsTuple]] = deque()
        self._positive_rules: Dict[str, List[Rule]] = {}
        self._negative_rules: Dict[str, List[Tuple[Rule, int]]] = {}
        for rule in program.rules:
            for i, lit in enumerate(rule.body):
                if not isinstance(lit, RelLiteral):
                    continue
                if lit.negated:
                    self._negative_rules.setdefault(lit.predicate, []).append((rule, i))
                else:
                    rules = self._positive_rules.setdefault(lit.predicate, [])
                    if rule not in rules:
                        rules.append(rule)
        for fact in program.facts:
            self.insert(fact.predicate, fact.args)

    def insert(self, predicate: str, args: Iterable) -> None:
        self._queue.append(("insert", predicate, _coerce(args)))
        self._drain()

    def delete(self, predicate: str, args: Iterable) -> None:
        self._queue.append(("delete", predicate, _coerce(args)))
        self._drain()

    def rows(self, predicate: str):
        return self.db.rows(predicate)

    def _drain(self) -> None:
        while self._queue:
            kind, pred, args = self._queue.popleft()
            if kind == "insert":
                self._apply(pred, args, +1)
            else:
                self._apply(pred, args, -1)

    def _apply(self, pred: str, args: ArgsTuple, sign: int) -> None:
        rel = self.db.relation(pred)
        if sign > 0:
            if not rel.add(args):
                return
            self.stats.facts_inserted += 1
        else:
            if not rel.discard(args):
                return
            self.stats.facts_deleted += 1
        # Positive occurrences: count delta = number of new matches.
        for rule in self._positive_rules.get(pred, ()):
            n_occ = sum(1 for lit in rule.positive_literals() if lit.predicate == pred)
            for occ in range(n_occ):
                # Streamed: _bump only queues transitions, the relations
                # the executor reads stay fixed until the queue drains.
                for head, _deriv in fire_rule(
                    rule, self.db, self.registry,
                    delta_pred=pred, delta_tuples={args}, delta_occurrence=occ,
                ):
                    self.stats.rule_firings += 1
                    self._bump(rule.head.predicate, head, sign)
        # Negative occurrences: inserting a blocker decrements, deleting
        # it restores (evaluated against the post-update state).
        for rule, lit_index in self._negative_rules.get(pred, ()):
            neg_lit = rule.body[lit_index]
            seed = match_sequences(neg_lit.atom.args, args, Substitution())
            if seed is None:
                continue
            remaining = tuple(l for i, l in enumerate(rule.body) if i != lit_index)
            reduced = Rule(rule.head, remaining, (), rule.rule_id)
            for subst, _used in enumerate_rule(
                reduced, self.db, self.registry, initial_subst=seed
            ):
                self.stats.rule_firings += 1
                head = ground_head(reduced, subst, self.registry)
                self._bump(rule.head.predicate, head, -sign)

    def _bump(self, pred: str, args: ArgsTuple, delta: int) -> None:
        fact: FactKey = (pred, args)
        count = self.counts.get(fact, 0) + delta
        if count < 0:
            raise EvaluationError(f"negative count for {fact!r}")
        if count == 0:
            self.counts.pop(fact, None)
            # Transition to zero: the queued delete updates the relation
            # and propagates further.
            self._queue.append(("delete", pred, args))
        else:
            self.counts[fact] = count
            if count == delta:
                # Transition from zero: first derivation of this fact.
                self._queue.append(("insert", pred, args))

    def count_of(self, predicate: str, args: Iterable) -> int:
        return self.counts.get((predicate, _coerce(args)), 0)


class DRedEvaluator:
    """Delete-and-rederive (DRed) maintenance [27].

    Deletion over-deletes every fact with *any* derivation using the
    deleted tuple, then tries to re-derive the over-deleted facts from
    what remains.  ``stats.facts_rederived`` counts the re-derivation
    work — the communication overhead the paper avoids by keeping
    derivation sets instead.

    Built on top of the set-of-derivations store (used here only as a
    support index); supports stratified programs without aggregates.
    """

    def __init__(
        self,
        program: Program,
        registry: Optional[BuiltinRegistry] = None,
    ):
        self._inner = IncrementalEvaluator(program, registry)
        self.program = program
        self.registry = self._inner.registry

    @property
    def db(self) -> Database:
        return self._inner.db

    @property
    def stats(self) -> MaintenanceStats:
        return self._inner.stats

    def insert(self, predicate: str, args: Iterable) -> None:
        self._inner.insert(predicate, args)

    def rows(self, predicate: str):
        return self._inner.rows(predicate)

    def delete(self, predicate: str, args: Iterable) -> None:
        """Over-delete then re-derive."""
        args_t = _coerce(args)
        rel = self.db.relation(predicate)
        if not rel.discard(args_t):
            return
        self.stats.facts_deleted += 1
        # Phase 1: over-deletion — transitively delete everything with a
        # derivation through the deleted fact (ignoring alternatives).
        overdeleted: List[FactKey] = []
        frontier: Deque[FactKey] = deque([(predicate, args_t)])
        store = self.db.derivations
        seen: Set[FactKey] = {(predicate, args_t)}
        while frontier:
            fact = frontier.popleft()
            for dependent in list(store.supporters(fact)):
                if dependent in seen:
                    continue
                if any(d.uses(fact) for d in store.derivations_of(dependent)):
                    seen.add(dependent)
                    overdeleted.append(dependent)
                    frontier.append(dependent)
        for pred, fargs in overdeleted:
            self.db.relation(pred).discard(fargs)
            store.discard_fact((pred, fargs))
            self.stats.facts_overdeleted += 1
        store.discard_fact((predicate, args_t))
        # Phase 2: re-derivation — repeatedly try to re-derive
        # over-deleted facts from the surviving database.
        remaining = set(overdeleted)
        changed = True
        while changed and remaining:
            changed = False
            for pred, fargs in list(remaining):
                for rule in self.program.rules_for(pred):
                    rederived = False
                    for head, derivation in fire_rule(rule, self.db, self.registry):
                        self.stats.rule_firings += 1
                        if head == fargs:
                            store.add((pred, fargs), derivation)
                            rederived = True
                    if rederived:
                        self.db.relation(pred).add(fargs)
                        self.stats.facts_rederived += 1
                        remaining.discard((pred, fargs))
                        changed = True
                        break
        # Facts that could not be re-derived stay deleted; their own
        # negative occurrences may resurrect other facts.
        for pred, fargs in remaining:
            self._inner._propagate_negative(pred, fargs, subtract=False)
            self._inner._drain()
        self._inner._propagate_negative(predicate, args_t, subtract=False)
        self._inner._drain()
