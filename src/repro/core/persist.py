"""Database persistence.

Saves/loads fact databases as JSON (reusing the wire term encoding from
:mod:`repro.dist.codegen`), so workloads, oracle snapshots and bench
inputs are reproducible artifacts.
"""

from __future__ import annotations

import json
from typing import Optional

from .builtins import BuiltinRegistry
from .errors import EvaluationError
from .eval import Database

FORMAT_VERSION = 1


def database_to_json(db: Database) -> str:
    """Serialize every relation of ``db`` (derivations are not saved —
    re-evaluate after loading if they are needed)."""
    from ..dist.codegen import term_to_json

    payload = {
        "version": FORMAT_VERSION,
        "relations": {
            pred: [
                [term_to_json(t) for t in args]
                for args in sorted(db.relation(pred), key=repr)
            ]
            for pred in db.predicates()
        },
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def database_from_json(
    text: str, registry: Optional[BuiltinRegistry] = None
) -> Database:
    from ..dist.codegen import term_from_json

    data = json.loads(text)
    if data.get("version") != FORMAT_VERSION:
        raise EvaluationError(
            f"unsupported database format version {data.get('version')!r}"
        )
    db = Database(registry) if registry is not None else Database()
    for pred, rows in data["relations"].items():
        rel = db.relation(pred)
        for row in rows:
            rel.add(tuple(term_from_json(t) for t in row))
    return db


def save_database(db: Database, path: str) -> None:
    with open(path, "w") as f:
        f.write(database_to_json(db))


def load_database(path: str, registry: Optional[BuiltinRegistry] = None) -> Database:
    with open(path) as f:
        return database_from_json(f.read(), registry)
