"""Dependency analysis and stratification.

Three evaluation classes, in increasing generality (Section IV-C):

* **stratified** — no recursion through negation or aggregation; the
  standard perfect-model semantics applies, and the program can be
  evaluated stratum by stratum;
* **XY-stratified** — derived tables can be partitioned into sub-tables
  (by a *stage argument*) whose dependency graph is acyclic; the paper's
  ``logicH`` shortest-path-tree program is the canonical example;
* **locally non-recursive** — no cycles in the *tuple-level* derivation
  graph; a runtime property that the set-of-derivations evaluator checks
  while running.

The classifier below is static: it returns ``STRATIFIED`` when possible,
else attempts to find a stage-argument assignment proving
``XY_STRATIFIED``, else reports ``LOCALLY_NONRECURSIVE_REQUIRED`` (the
engine may still run such programs and verify local non-recursion at
runtime).
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .ast import BuiltinLiteral, Program, RelLiteral, Rule
from .errors import StratificationError
from .terms import Constant, FunctionTerm, Term, Variable


class ProgramClass(enum.Enum):
    """Static classification of a program's recursion/negation structure."""

    NONRECURSIVE = "nonrecursive"
    POSITIVE_RECURSIVE = "positive-recursive"
    STRATIFIED = "stratified"
    XY_STRATIFIED = "xy-stratified"
    LOCALLY_NONRECURSIVE_REQUIRED = "locally-nonrecursive-required"


def dependency_graph(program: Program) -> "nx.DiGraph":
    """Predicate dependency graph.

    Edge ``Q -> P`` when a rule with head ``P`` uses ``Q`` in its body
    (data flows from Q to P).  Edge attribute ``negative`` is True when
    some such use is negated or the rule aggregates (aggregation needs
    the full relation, like negation).
    """
    graph = nx.DiGraph()
    for pred in program.predicates():
        graph.add_node(pred)
    for rule in program.rules:
        head = rule.head.predicate
        for lit in rule.body:
            if not isinstance(lit, RelLiteral):
                continue
            negative = lit.negated or rule.has_aggregates
            if graph.has_edge(lit.predicate, head):
                graph[lit.predicate][head]["negative"] |= negative
            else:
                graph.add_edge(lit.predicate, head, negative=negative)
    return graph


def recursive_components(program: Program) -> List[Set[str]]:
    """Strongly connected components with more than one predicate, or a
    single predicate with a self-loop — the recursive cliques."""
    graph = dependency_graph(program)
    out = []
    for comp in nx.strongly_connected_components(graph):
        if len(comp) > 1:
            out.append(set(comp))
        else:
            (pred,) = comp
            if graph.has_edge(pred, pred):
                out.append({pred})
    return out


def is_recursive(program: Program) -> bool:
    return bool(recursive_components(program))


def stratify(program: Program) -> List[Set[str]]:
    """Return strata (lists of predicate sets, bottom-up) for a
    stratified program; raise :class:`StratificationError` when a
    negative edge lies inside a strongly connected component.
    """
    graph = dependency_graph(program)
    comp_of: Dict[str, int] = {}
    components = list(nx.strongly_connected_components(graph))
    for i, comp in enumerate(components):
        for pred in comp:
            comp_of[pred] = i
    for u, v, data in graph.edges(data=True):
        if data["negative"] and comp_of[u] == comp_of[v]:
            raise StratificationError(
                f"negation through recursion between {u!r} and {v!r}: "
                "program is not stratified"
            )
    condensation = nx.condensation(graph, components)
    # Longest-path layering over the condensation gives minimal strata:
    # a predicate's stratum exceeds that of any predicate it depends on
    # negatively, and is at least that of positive dependencies.
    order = list(nx.topological_sort(condensation))
    level: Dict[int, int] = {c: 0 for c in order}
    for c in order:
        for succ in condensation.successors(c):
            negative = any(
                graph[u][v]["negative"]
                for u in condensation.nodes[c]["members"]
                for v in condensation.nodes[succ]["members"]
                if graph.has_edge(u, v)
            )
            bump = 1 if negative else 0
            level[succ] = max(level[succ], level[c] + bump)
    strata: Dict[int, Set[str]] = {}
    for c in order:
        strata.setdefault(level[c], set()).update(condensation.nodes[c]["members"])
    return [strata[i] for i in sorted(strata)]


# ---------------------------------------------------------------------------
# XY-stratification
# ---------------------------------------------------------------------------


class XYStratification:
    """Witness that a program is XY-stratified.

    ``stage_position`` maps each recursive predicate to the argument
    position acting as its stage; ``priority`` orders predicates *within*
    a stage (lower priority evaluates first), e.g. ``H'`` before ``H`` in
    the paper's logicH program.
    """

    def __init__(self, stage_position: Dict[str, int], priority: Dict[str, int]):
        self.stage_position = dict(stage_position)
        self.priority = dict(priority)

    def stage_term(self, rule_head_or_lit) -> Optional[Term]:
        pred = rule_head_or_lit.predicate
        pos = self.stage_position.get(pred)
        if pos is None:
            return None
        atom = getattr(rule_head_or_lit, "atom", rule_head_or_lit)
        return atom.args[pos]

    def __repr__(self) -> str:
        return (
            f"XYStratification(stage={self.stage_position!r}, "
            f"priority={self.priority!r})"
        )


def _stage_delta(head_term: Term, body_term: Term) -> Optional[str]:
    """Relation of a body stage term to the head stage term.

    Returns ``'same'`` when syntactically equal, ``'lower'`` when the
    head term is ``V + c`` (c > 0) and the body term is ``V`` (or a
    smaller increment of V), ``None`` when unprovable.
    """
    if body_term == head_term:
        return "same"
    base, inc = _split_increment(head_term)
    bbase, binc = _split_increment(body_term)
    if base is not None and base == bbase and binc is not None and inc is not None:
        if binc < inc:
            return "lower"
        if binc == inc:
            return "same"
        return None
    if isinstance(body_term, Constant) and isinstance(head_term, Constant):
        if _is_number(body_term) and _is_number(head_term):
            if body_term.value < head_term.value:
                return "lower"
    return None


def _split_increment(term: Term) -> Tuple[Optional[Term], Optional[int]]:
    """Decompose ``V + c`` / ``V`` into (V, c); (None, None) otherwise."""
    if isinstance(term, Variable):
        return term, 0
    if (
        isinstance(term, FunctionTerm)
        and term.functor == "+"
        and term.arity == 2
        and isinstance(term.args[1], Constant)
        and isinstance(term.args[1].value, int)
    ):
        return term.args[0], term.args[1].value
    return None, None


def _is_number(term: Term) -> bool:
    return isinstance(term, Constant) and isinstance(term.value, (int, float))


def _body_implies_lower(rule: Rule, head_stage: Term, body_stage: Term) -> bool:
    """True when a comparison subgoal proves ``body_stage < head_stage``,
    e.g. ``(d+1) > d'`` in the logicH program."""
    for lit in rule.builtin_literals():
        if lit.negated or len(lit.args) != 2:
            continue
        left, right = lit.args
        if lit.name == ">" and left == head_stage and right == body_stage:
            return True
        if lit.name == "<" and left == body_stage and right == head_stage:
            return True
        if lit.name == ">=" and left == head_stage and right == body_stage:
            return False  # >= is not strict
    return False


def find_xy_stratification(program: Program) -> Optional[XYStratification]:
    """Search for a stage-argument assignment proving XY-stratification.

    For each recursive component containing a negative edge, every
    candidate combination of stage positions is checked (components and
    arities are small in practice, so the product search is cheap).
    """
    graph = dependency_graph(program)
    arities = {p: max(a) for p, a in program.arities().items()}
    stage_position: Dict[str, int] = {}
    priority: Dict[str, int] = {}

    for comp in recursive_components(program):
        has_negative = any(
            graph[u][v]["negative"]
            for u in comp
            for v in comp
            if graph.has_edge(u, v)
        )
        if not has_negative:
            continue  # plain positive recursion needs no stage argument
        assignment = _solve_component(program, comp, arities)
        if assignment is None:
            return None
        positions, prio = assignment
        stage_position.update(positions)
        priority.update(prio)
    return XYStratification(stage_position, priority)


def _solve_component(
    program: Program, comp: Set[str], arities: Dict[str, int]
) -> Optional[Tuple[Dict[str, int], Dict[str, int]]]:
    preds = sorted(comp)
    rules = [r for r in program.rules if r.head.predicate in comp]
    choices = [range(arities[p]) for p in preds]
    for combo in itertools.product(*choices):
        positions = dict(zip(preds, combo))
        ok, same_stage_edges = _check_assignment(rules, comp, positions)
        if not ok:
            continue
        prio = _order_same_stage(preds, same_stage_edges)
        if prio is not None:
            return positions, prio
    return None


def _check_assignment(
    rules: Sequence[Rule],
    comp: Set[str],
    positions: Dict[str, int],
) -> Tuple[bool, List[Tuple[str, str]]]:
    """Check one stage-position assignment.

    Returns (ok, same_stage_edges) where same_stage_edges records
    body-pred -> head-pred dependencies at equal stage (these must form
    an acyclic per-stage order).
    """
    same_edges: List[Tuple[str, str]] = []
    for rule in rules:
        head_pred = rule.head.predicate
        head_pos = positions[head_pred]
        if head_pos >= rule.head.arity:
            return False, []
        head_stage = rule.head.args[head_pos]
        for lit in rule.body:
            if not isinstance(lit, RelLiteral) or lit.predicate not in comp:
                continue
            body_pos = positions[lit.predicate]
            if body_pos >= lit.atom.arity:
                return False, []
            body_stage = lit.atom.args[body_pos]
            relation = _stage_delta(head_stage, body_stage)
            if relation is None and _body_implies_lower(rule, head_stage, body_stage):
                relation = "lower"
            if relation is None:
                return False, []
            if relation == "same":
                same_edges.append((lit.predicate, head_pred))
    return True, same_edges


def _order_same_stage(
    preds: Sequence[str], edges: List[Tuple[str, str]]
) -> Optional[Dict[str, int]]:
    graph = nx.DiGraph()
    graph.add_nodes_from(preds)
    graph.add_edges_from(edges)
    try:
        order = list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible:
        return None
    return {p: i for i, p in enumerate(order)}


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


class Analysis:
    """Full static analysis result for a program."""

    def __init__(
        self,
        program_class: ProgramClass,
        strata: Optional[List[Set[str]]],
        xy: Optional[XYStratification],
    ):
        self.program_class = program_class
        self.strata = strata
        self.xy = xy

    def __repr__(self) -> str:
        return f"Analysis({self.program_class.value})"


def classify(program: Program) -> Analysis:
    """Classify ``program`` into one of :class:`ProgramClass`."""
    components = recursive_components(program)
    try:
        strata = stratify(program)
        if not components:
            return Analysis(ProgramClass.NONRECURSIVE, strata, None)
        has_negation = any(
            lit.negated
            for rule in program.rules
            for lit in rule.body
            if isinstance(lit, RelLiteral)
        )
        cls = (
            ProgramClass.STRATIFIED if has_negation
            else ProgramClass.POSITIVE_RECURSIVE
        )
        return Analysis(cls, strata, None)
    except StratificationError:
        xy = find_xy_stratification(program)
        if xy is not None:
            return Analysis(ProgramClass.XY_STRATIFIED, None, xy)
        return Analysis(ProgramClass.LOCALLY_NONRECURSIVE_REQUIRED, None, None)


# ---------------------------------------------------------------------------
# Coordination-freeness (CALM / win-move analysis)
# ---------------------------------------------------------------------------

#: Built-ins whose truth can flip when facts disappear (they observe the
#: *absence* or the *aggregate state* of a relation rather than a single
#: binding).  The stock registry has none — every comparison and
#: arithmetic built-in is a pure function of its bound arguments, hence
#: monotone — but deployments registering e.g. a ``missing/1`` probe add
#: its name here so :func:`classify_coordination` refuses to stream it.
NONMONOTONE_BUILTINS: Set[str] = set()


class CoordFree:
    """Verdict: the program needs no coordination — its distributed
    fixpoint is the same under eager (pipelined) and barriered
    evaluation.

    ``kind`` is ``'monotone'`` (no negation/aggregation at all: the
    CALM-theorem case) or ``'win-move'`` (stratified negation whose
    negated subgoals are guarded by positive ones, the shape Zinn et
    al. prove coordination-free: monotone rules stream eagerly while
    the negation rules keep their stratum's delay).
    """

    __slots__ = ("kind",)

    coordination_free = True

    def __init__(self, kind: str):
        self.kind = kind

    def __repr__(self) -> str:
        return f"CoordFree({self.kind})"


class NeedsBarriers:
    """Verdict: the program must keep Theorem 3's phase barriers.

    ``reason`` is a stable machine-readable code (one of
    :data:`NeedsBarriers.REASONS`); ``detail`` names the blocking rule
    or literal for humans.
    """

    __slots__ = ("reason", "detail")

    coordination_free = False

    REASONS = (
        "aggregation",
        "negation-through-recursion",
        "unguarded-negation",
        "nonmonotone-builtin",
    )

    def __init__(self, reason: str, detail: str):
        if reason not in self.REASONS:
            raise ValueError(f"unknown NeedsBarriers reason {reason!r}")
        self.reason = reason
        self.detail = detail

    def __repr__(self) -> str:
        return f"NeedsBarriers({self.reason}: {self.detail})"


def _unguarded_negation(rule: Rule) -> Optional[RelLiteral]:
    """A negated subgoal is *guarded* when every one of its variables is
    bound by some positive subgoal of the same rule — the win-move shape
    (``win(X) :- move(X, Y), not win(Y)`` guards ``Y`` via ``move``).
    An unguarded negated literal ranges over the full (possibly still
    arriving) extent of its stream, so its truth cannot be decided
    eagerly.  Returns the first offender, or None."""
    positive_vars: Set[Variable] = set()
    for lit in rule.positive_literals():
        positive_vars.update(lit.variables())
    for lit in rule.negative_literals():
        if any(v not in positive_vars for v in lit.variables()):
            return lit
    return None


def classify_coordination(program: Program):
    """Decide whether ``program`` can be evaluated without phase
    barriers.

    Returns :class:`CoordFree` for monotone programs (no negation, no
    aggregation, no non-monotone built-ins — the CALM-theorem case) and
    for win-move-shaped programs (stratified negation with every negated
    subgoal guarded by positive bindings, per "Win-Move is
    Coordination-Free (Sometimes)").  Everything else gets a
    :class:`NeedsBarriers` verdict whose ``reason``/``detail`` name the
    blocking construct.
    """
    for rule in program.rules:
        if rule.has_aggregates:
            return NeedsBarriers(
                "aggregation",
                f"rule for {rule.head.predicate!r} aggregates over its "
                "derivations; an eager aggregate could be observed "
                "before its group is complete",
            )
        for lit in rule.builtin_literals():
            if lit.name in NONMONOTONE_BUILTINS:
                return NeedsBarriers(
                    "nonmonotone-builtin",
                    f"rule for {rule.head.predicate!r} calls "
                    f"non-monotone built-in {lit.name!r}",
                )
    try:
        stratify(program)
    except StratificationError as exc:
        return NeedsBarriers("negation-through-recursion", str(exc))
    has_negation = False
    for rule in program.rules:
        offender = _unguarded_negation(rule)
        if offender is not None:
            return NeedsBarriers(
                "unguarded-negation",
                f"rule for {rule.head.predicate!r}: negated subgoal "
                f"{offender!r} has variables not bound by any positive "
                "subgoal",
            )
        if rule.negative_literals():
            has_negation = True
    return CoordFree("win-move" if has_negation else "monotone")
