"""Abstract syntax for deductive programs.

A *rule* is ``H :- G1, ..., Gk`` where the head ``H`` is a relational
atom and each subgoal ``Gi`` is a relational literal (possibly negated,
Section IV-B), a built-in comparison such as ``dist(L1, L2) <= 50``, or
a built-in predicate call.  Heads may contain aggregate specifications
(``max(D)``), which the evaluator implements with the all-solutions
semantics of Section IV-C.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .errors import ProgramError
from .terms import Constant, FunctionTerm, Substitution, Term, Variable

#: Aggregate functors recognized in rule heads.
AGGREGATE_FUNCTORS = frozenset({"count", "sum", "min", "max", "avg"})

#: Comparison operators available as built-in literals.
COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})


class Atom:
    """A relational atom ``p(t1, ..., tn)``."""

    __slots__ = ("predicate", "args")

    def __init__(self, predicate: str, args: Iterable[Term]):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))
        for a in self.args:
            if not isinstance(a, Term):
                raise TypeError(f"atom argument {a!r} is not a Term")

    def __setattr__(self, name, value):
        raise AttributeError("Atom is immutable")

    def __reduce__(self):
        # The immutability guard also blocks pickle's slot restore;
        # rebuild through the constructor (AST fragments may ride
        # messages across shard-worker process boundaries).
        return (Atom, (self.predicate, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        return (self.predicate, self.arity)

    def is_ground(self) -> bool:
        return all(a.is_ground() for a in self.args)

    def variables(self) -> Iterator[Variable]:
        for a in self.args:
            yield from a.variables()

    def substitute(self, subst: Substitution) -> "Atom":
        return Atom(self.predicate, [a.substitute(subst) for a in self.args])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash((self.predicate, self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.predicate}({inner})"


class Literal:
    """Abstract base class for rule subgoals."""

    __slots__ = ()

    negated = False

    def variables(self) -> Iterator[Variable]:
        raise NotImplementedError

    def substitute(self, subst: Substitution) -> "Literal":
        raise NotImplementedError


class RelLiteral(Literal):
    """A (possibly negated) relational subgoal."""

    __slots__ = ("atom", "negated")

    def __init__(self, atom: Atom, negated: bool = False):
        object.__setattr__(self, "atom", atom)
        object.__setattr__(self, "negated", negated)

    def __setattr__(self, name, value):
        raise AttributeError("RelLiteral is immutable")

    def __reduce__(self):
        return (RelLiteral, (self.atom, self.negated))

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    def substitute(self, subst: Substitution) -> "RelLiteral":
        return RelLiteral(self.atom.substitute(subst), self.negated)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RelLiteral)
            and self.atom == other.atom
            and self.negated == other.negated
        )

    def __hash__(self) -> int:
        return hash((self.atom, self.negated))

    def __repr__(self) -> str:
        return f"not {self.atom!r}" if self.negated else repr(self.atom)


class BuiltinLiteral(Literal):
    """A built-in call: a comparison (``X <= 5``, ``Y = X + 1``) or a
    registered built-in predicate (``close(R1, R2)``).

    Built-ins are always evaluated *locally* at a node once their
    arguments are sufficiently bound — this is what lets the framework
    embed arbitrary arithmetic without affecting communication cost
    (Section II-B).
    """

    __slots__ = ("name", "args", "negated")

    def __init__(self, name: str, args: Iterable[Term], negated: bool = False):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "negated", negated)

    def __setattr__(self, name, value):
        raise AttributeError("BuiltinLiteral is immutable")

    def __reduce__(self):
        return (BuiltinLiteral, (self.name, self.args, self.negated))

    @property
    def is_comparison(self) -> bool:
        return self.name in COMPARISON_OPS

    def variables(self) -> Iterator[Variable]:
        for a in self.args:
            yield from a.variables()

    def substitute(self, subst: Substitution) -> "BuiltinLiteral":
        return BuiltinLiteral(
            self.name, [a.substitute(subst) for a in self.args], self.negated
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BuiltinLiteral)
            and self.name == other.name
            and self.args == other.args
            and self.negated == other.negated
        )

    def __hash__(self) -> int:
        return hash((self.name, self.args, self.negated))

    def __repr__(self) -> str:
        prefix = "not " if self.negated else ""
        if self.is_comparison and len(self.args) == 2:
            return f"{prefix}{self.args[0]!r} {self.name} {self.args[1]!r}"
        inner = ", ".join(repr(a) for a in self.args)
        return f"{prefix}{self.name}({inner})"


class AggregateSpec:
    """An aggregate in a rule head: position, function, aggregated variable.

    ``count`` may aggregate the anonymous variable (``count(_)``), in
    which case ``var`` is None and each derivation contributes 1.
    """

    __slots__ = ("position", "function", "var")

    def __init__(self, position: int, function: str, var: Optional[Variable]):
        if function not in AGGREGATE_FUNCTORS:
            raise ProgramError(f"unknown aggregate function {function!r}")
        object.__setattr__(self, "position", position)
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "var", var)

    def __setattr__(self, name, value):
        raise AttributeError("AggregateSpec is immutable")

    def __reduce__(self):
        return (AggregateSpec, (self.position, self.function, self.var))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AggregateSpec)
            and (self.position, self.function, self.var)
            == (other.position, other.function, other.var)
        )

    def __hash__(self) -> int:
        return hash((self.position, self.function, self.var))

    def __repr__(self) -> str:
        return f"{self.function}({self.var!r})@{self.position}"


class Rule:
    """A deductive rule ``head :- body``.

    ``rule_id`` uniquely identifies the rule inside its program —
    derivations record it so that multiple rules with the same head
    predicate are maintained independently (Section IV-B).
    """

    __slots__ = ("head", "body", "aggregates", "rule_id", "_hash")

    def __init__(
        self,
        head: Atom,
        body: Iterable[Literal],
        aggregates: Iterable[AggregateSpec] = (),
        rule_id: Optional[int] = None,
    ):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "aggregates", tuple(aggregates))
        object.__setattr__(self, "rule_id", rule_id)
        object.__setattr__(self, "_hash", hash((head, self.body, self.aggregates)))

    def __setattr__(self, name, value):
        raise AttributeError("Rule is immutable")

    def __reduce__(self):
        return (Rule, (self.head, self.body, self.aggregates, self.rule_id))

    def with_id(self, rule_id: int) -> "Rule":
        return Rule(self.head, self.body, self.aggregates, rule_id)

    @property
    def is_fact(self) -> bool:
        return not self.body and self.head.is_ground()

    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates)

    def positive_literals(self) -> List[RelLiteral]:
        return [
            lit for lit in self.body
            if isinstance(lit, RelLiteral) and not lit.negated
        ]

    def negative_literals(self) -> List[RelLiteral]:
        return [
            lit for lit in self.body
            if isinstance(lit, RelLiteral) and lit.negated
        ]

    def builtin_literals(self) -> List[BuiltinLiteral]:
        return [lit for lit in self.body if isinstance(lit, BuiltinLiteral)]

    def body_predicates(self) -> Set[str]:
        return {
            lit.predicate for lit in self.body if isinstance(lit, RelLiteral)
        }

    def head_variables(self) -> Set[Variable]:
        return set(self.head.variables())

    def variables(self) -> Set[Variable]:
        out = set(self.head.variables())
        for lit in self.body:
            out.update(lit.variables())
        return out

    def rename_apart(self, suffix: str) -> "Rule":
        """Return a copy with every variable renamed (for rule instantiation
        that must not capture variables of other rules)."""
        mapping = Substitution(
            {v: Variable(f"{v.name}__{suffix}") for v in self.variables()}
        )
        return Rule(
            self.head.substitute(mapping),
            [lit.substitute(mapping) for lit in self.body],
            self.aggregates,
            self.rule_id,
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
            and self.aggregates == other.aggregates
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        body = ", ".join(repr(lit) for lit in self.body)
        return f"{self.head!r} :- {body}."


class Program:
    """An ordered collection of rules plus ground facts.

    The program is the unit handed to analysis (safety, stratification)
    and to the compilers (centralized evaluator, distributed plan).
    """

    def __init__(self, rules: Iterable[Rule] = (), facts: Iterable[Atom] = ()):
        self.rules: List[Rule] = []
        self.facts: List[Atom] = []
        for rule in rules:
            self.add_rule(rule)
        for fact in facts:
            self.add_fact(fact)

    def add_rule(self, rule: Rule) -> Rule:
        """Append a rule, assigning its ``rule_id``; returns the stored rule."""
        if rule.is_fact:
            self.add_fact(rule.head)
            return rule
        rule = rule.with_id(len(self.rules))
        self.rules.append(rule)
        return rule

    def add_fact(self, fact: Atom) -> None:
        if not fact.is_ground():
            raise ProgramError(f"fact {fact!r} is not ground")
        self.facts.append(fact)

    # -- predicate classification --------------------------------------

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule head (derived tables)."""
        return {r.head.predicate for r in self.rules}

    def edb_predicates(self) -> Set[str]:
        """Predicates only ever read: base streams / base tables."""
        idb = self.idb_predicates()
        out: Set[str] = set()
        for rule in self.rules:
            for lit in rule.body:
                if isinstance(lit, RelLiteral) and lit.predicate not in idb:
                    out.add(lit.predicate)
        for fact in self.facts:
            if fact.predicate not in idb:
                out.add(fact.predicate)
        return out

    def predicates(self) -> Set[str]:
        return self.idb_predicates() | self.edb_predicates()

    def rules_for(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def rules_using(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if predicate in r.body_predicates()]

    def arities(self) -> Dict[str, Set[int]]:
        """Map predicate name to the set of arities it is used with."""
        out: Dict[str, Set[int]] = {}
        for rule in self.rules:
            out.setdefault(rule.head.predicate, set()).add(rule.head.arity)
            for lit in rule.body:
                if isinstance(lit, RelLiteral):
                    out.setdefault(lit.predicate, set()).add(lit.atom.arity)
        for fact in self.facts:
            out.setdefault(fact.predicate, set()).add(fact.arity)
        return out

    def validate_arities(self) -> None:
        """Raise if any predicate is used with inconsistent arity."""
        for pred, arities in self.arities().items():
            if len(arities) > 1:
                raise ProgramError(
                    f"predicate {pred!r} used with multiple arities: {sorted(arities)}"
                )

    def extend(self, other: "Program") -> "Program":
        """Return a new program containing this program's rules then the
        other's (rule ids reassigned)."""
        return Program(
            itertools.chain(self.rules, other.rules),
            itertools.chain(self.facts, other.facts),
        )

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        lines = [repr(r) for r in self.rules]
        lines.extend(f"{f!r}." for f in self.facts)
        return "\n".join(lines)
