"""Top-down (tabled) query evaluation.

The central server of Fig. 2 rewrites programs with magic sets so that
*bottom-up* evaluation only derives facts relevant to the query — the
classical theorem being that this matches *top-down* evaluation with
tabling.  This module provides that top-down side: SLD resolution with
memoization (OLDT-style tabling), which

* terminates on recursive Datalog where plain Prolog loops;
* answers goals with arbitrary binding patterns;
* serves as an independent oracle for the magic-sets transformation
  (tests assert `top_down(Q) == bottom_up(magic(Q))`).

Stratified negation is supported: a negated subgoal is evaluated as a
(ground) sub-query whose table must be completed first; programs where
negation cycles through recursion are rejected up front.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .ast import Atom, BuiltinLiteral, Program, RelLiteral
from .builtins import BuiltinRegistry, DEFAULT_REGISTRY, eval_builtin, normalize_partial, eval_term, value_to_term
from .errors import EvaluationError, ProgramError
from .eval import ArgsTuple, Database, order_body
from .safety import check_program_safety
from .stratify import classify
from .terms import Substitution, Term, Variable
from .unify import match_sequences, unify_sequences


class _Table:
    """Answers for one tabled subgoal (keyed by its canonical form)."""

    __slots__ = ("answers", "complete", "in_progress")

    def __init__(self):
        self.answers: Set[ArgsTuple] = set()
        self.complete = False
        self.in_progress = False


def _canonical(atom: Atom) -> Tuple[str, Tuple]:
    """Variant-canonical key: variables numbered by first occurrence."""
    mapping: Dict[Variable, int] = {}
    parts: List = []

    def walk(term: Term):
        if isinstance(term, Variable):
            if term not in mapping:
                mapping[term] = len(mapping)
            return ("v", mapping[term])
        from .terms import Constant, FunctionTerm

        if isinstance(term, Constant):
            return ("c", term.value)
        assert isinstance(term, FunctionTerm)
        return ("f", term.functor, tuple(walk(a) for a in term.args))

    for arg in atom.args:
        parts.append(walk(arg))
    return (atom.predicate, tuple(parts))


class TopDownEvaluator:
    """Tabled SLD resolution over a program + EDB database.

    ::

        evaluator = TopDownEvaluator(program, db)
        for answer in evaluator.query(parse_atom("anc(n0, Z)")):
            print(answer)   # ground argument tuples
    """

    def __init__(
        self,
        program: Program,
        db: Database,
        registry: Optional[BuiltinRegistry] = None,
        max_iterations: int = 10_000,
    ):
        check_program_safety(program)
        for rule in program.rules:
            if rule.has_aggregates:
                raise ProgramError("top-down evaluation does not support aggregates")
        analysis = classify(program)
        if analysis.strata is None:
            raise ProgramError(
                "top-down tabling requires a stratified program"
            )
        self.program = program
        self.db = db
        self.registry = registry or (db.registry if db else DEFAULT_REGISTRY)
        self.max_iterations = max_iterations
        self.idb = program.idb_predicates()
        self._tables: Dict[Tuple[str, Tuple], _Table] = {}
        self._depth = 0
        for fact in program.facts:
            db.assert_atom(fact)

    # -- public API ------------------------------------------------------

    def query(self, goal: Atom) -> Set[ArgsTuple]:
        """All ground instances of ``goal`` derivable from the program.

        Returns full argument tuples (the goal's constants included).
        """
        table = self._solve(goal)
        return set(table.answers)

    def ask(self, goal: Atom) -> bool:
        """Does any instance of ``goal`` hold?"""
        return bool(self.query(goal))

    # -- tabling -----------------------------------------------------------

    def _solve(self, goal: Atom) -> _Table:
        """Evaluate a (possibly non-ground) goal to fixpoint.

        Mutually recursive tables form a strongly connected activation
        group whose answers grow together, so completion can only be
        decided globally: the *outermost* activation iterates until no
        table anywhere grows, then marks every table complete.  Inner
        activations expand one round and return their current answers;
        recursive re-entry (an in-progress table) simply consumes what
        is there so far.
        """
        key = _canonical(goal)
        table = self._tables.get(key)
        if table is None:
            table = _Table()
            self._tables[key] = table
        if table.complete or table.in_progress:
            return table
        table.in_progress = True
        outermost = self._depth == 0
        self._depth += 1
        try:
            if outermost:
                for _ in range(self.max_iterations):
                    before = self._total_answers()
                    self._expand(goal, table)
                    if self._total_answers() == before:
                        break
                else:
                    raise EvaluationError(
                        "tabled evaluation did not converge "
                        f"(> {self.max_iterations} iterations)"
                    )
                # Everything reached from this activation is saturated.
                # Tables still in progress belong to an enclosing
                # activation (we were re-entered for a negated subgoal)
                # and may yet grow — leave those open.
                for t in self._tables.values():
                    if not t.in_progress or t is table:
                        t.complete = True
            else:
                self._expand(goal, table)
        finally:
            self._depth -= 1
            table.in_progress = False
        return table

    def _total_answers(self) -> int:
        return sum(len(t.answers) for t in self._tables.values())

    def _expand(self, goal: Atom, table: _Table) -> None:
        """One round: run every rule for the goal against the current
        tables, adding any new answers."""
        if goal.predicate not in self.idb:
            for row in self.db.relation(goal.predicate).candidates(
                goal.args, Substitution()
            ):
                if match_sequences(goal.args, row, Substitution()) is not None:
                    table.answers.add(row)
            return
        for rule in self.program.rules_for(goal.predicate):
            renamed = rule.rename_apart(f"td{id(table) & 0xFFFF}")
            head_bindings = unify_sequences(renamed.head.args, goal.args)
            if head_bindings is None:
                continue
            for subst in self._prove_body(renamed, head_bindings):
                answer = tuple(
                    value_to_term(eval_term(arg.substitute(subst), self.registry))
                    for arg in renamed.head.args
                )
                if all(a.is_ground() for a in answer):
                    table.answers.add(answer)

    def _prove_body(self, rule, bindings: Substitution) -> Iterator[Substitution]:
        ordered = order_body(rule)

        def recurse(idx: int, subst: Substitution) -> Iterator[Substitution]:
            if idx == len(ordered):
                yield subst
                return
            lit = ordered[idx]
            if isinstance(lit, BuiltinLiteral):
                for s2 in eval_builtin(lit, subst, self.registry):
                    yield from recurse(idx + 1, s2)
                return
            assert isinstance(lit, RelLiteral)
            subgoal = Atom(
                lit.predicate,
                [
                    normalize_partial(a.substitute(subst), self.registry)
                    for a in lit.atom.args
                ],
            )
            if lit.negated:
                # Safety guarantees (non-anonymous) groundness here.
                # The negated table must be *complete* before the
                # anti-check (a growing under-approximation would let
                # wrong answers through, and answers never retract);
                # stratification guarantees it can complete without
                # cycling back into this activation, so solve it in a
                # fresh outermost context.
                answers = self._complete_subquery(subgoal)
                if not any(
                    match_sequences(subgoal.args, row, Substitution()) is not None
                    for row in answers
                ):
                    yield from recurse(idx + 1, subst)
                return
            for row in self._subquery_answers(subgoal):
                row_bindings = match_sequences(subgoal.args, row, Substitution())
                if row_bindings is None:
                    continue
                s2 = Substitution(subst)
                s2.update(row_bindings)
                yield from recurse(idx + 1, s2)

        yield from recurse(0, Substitution(bindings))

    def _complete_subquery(self, subgoal: Atom) -> Set[ArgsTuple]:
        """Solve a (lower-stratum) subgoal to a completed table."""
        if subgoal.predicate not in self.idb:
            return self._subquery_answers(subgoal)
        saved = self._depth
        self._depth = 0
        try:
            return set(self._solve(subgoal).answers)
        finally:
            self._depth = saved

    def _subquery_answers(self, subgoal: Atom) -> Set[ArgsTuple]:
        if subgoal.predicate not in self.idb:
            out = set()
            for row in self.db.relation(subgoal.predicate).candidates(
                subgoal.args, Substitution()
            ):
                if match_sequences(subgoal.args, row, Substitution()) is not None:
                    out.add(row)
            return out
        key = _canonical(subgoal)
        existing = self._tables.get(key)
        if existing is not None and (existing.complete or existing.in_progress):
            # In-progress: consume current answers (fixpoint iteration
            # at the outermost activation closes the gap).
            return set(existing.answers)
        return set(self._solve(subgoal).answers)


def top_down_query(
    program: Program,
    db: Database,
    goal: Atom,
    registry: Optional[BuiltinRegistry] = None,
) -> Set[ArgsTuple]:
    """One-shot convenience wrapper around :class:`TopDownEvaluator`."""
    return TopDownEvaluator(program, db, registry).query(goal)
