"""Term representation for the deductive language.

The paper's language is Datalog extended with *function symbols*: an
argument of a predicate may be an arbitrary term, where a term is a
constant, a variable, or ``f(t1, ..., tn)`` for a function symbol ``f``
and terms ``t_i`` (Section II-B).  Lists (used in Example 2 for vehicle
trajectories) are syntactic sugar over the binary function symbol
``cons`` and the constant ``nil``, so the join machinery needs no special
cases for them.

Terms are immutable and hashable so they can live in sets and serve as
dictionary keys (tuple stores index on ground terms).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

#: Python values allowed inside constants.
ConstValue = Union[int, float, str, bool, tuple, frozenset, None]


class Term:
    """Abstract base class for all terms."""

    __slots__ = ()

    def is_ground(self) -> bool:
        """Return True if the term contains no variables."""
        raise NotImplementedError

    def variables(self) -> Iterator["Variable"]:
        """Yield every variable occurrence in the term (with repeats)."""
        raise NotImplementedError

    def substitute(self, subst: "Substitution") -> "Term":
        """Return the term with variables replaced per ``subst``."""
        raise NotImplementedError


class Constant(Term):
    """A ground atomic value: number, string, symbol, coordinate tuple, ...

    Symbols (e.g. ``enemy``) and strings are both represented as Python
    strings; the parser quotes strings but both compare equal if their
    payloads match, which matches Datalog's untyped-constant semantics.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: ConstValue):
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Constant is immutable")

    def __reduce__(self):
        # The immutability guard also blocks pickle's slot restore;
        # rebuild through the constructor instead (terms travel inside
        # border-crossing records between shard worker processes).
        return (Constant, (self.value,))

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def substitute(self, subst: "Substitution") -> "Term":
        return self

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        # Terms are hashed constantly (relation membership, derivation
        # stores, the intern table), so the hash is computed once and
        # cached.  object.__setattr__ bypasses the immutability guard.
        try:
            return self._hash
        except AttributeError:
            h = hash(("const", self.value))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return self.value
        return repr(self.value)


class Variable(Term):
    """A logic variable.  Names starting with ``_`` are anonymous."""

    __slots__ = ("name",)

    _fresh_counter = 0

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Variable is immutable")

    def __reduce__(self):
        return (Variable, (self.name,))

    @classmethod
    def fresh(cls, hint: str = "V") -> "Variable":
        """Return a variable with a globally unique name."""
        cls._fresh_counter += 1
        return cls(f"_{hint}{cls._fresh_counter}")

    @property
    def is_anonymous(self) -> bool:
        return self.name.startswith("_")

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def substitute(self, subst: "Substitution") -> "Term":
        bound = subst.get(self)
        if bound is None:
            return self
        # Follow chains so X->Y, Y->c resolves to c.
        if isinstance(bound, Variable) and bound in subst:
            return bound.substitute(subst)
        return bound.substitute(subst) if not bound.is_ground() else bound

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return self.name


class FunctionTerm(Term):
    """A compound term ``f(t1, ..., tn)``.

    Also carries arithmetic expressions (functors ``+ - * / mod min max``)
    which :func:`repro.core.builtins.eval_arith` evaluates once ground,
    and list cells (functor ``cons``).
    """

    __slots__ = ("functor", "args")

    def __init__(self, functor: str, args: Iterable[Term]):
        object.__setattr__(self, "functor", functor)
        object.__setattr__(self, "args", tuple(args))
        for a in self.args:
            if not isinstance(a, Term):
                raise TypeError(f"FunctionTerm argument {a!r} is not a Term")

    def __setattr__(self, name, value):
        raise AttributeError("FunctionTerm is immutable")

    def __reduce__(self):
        return (FunctionTerm, (self.functor, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_ground(self) -> bool:
        return all(a.is_ground() for a in self.args)

    def variables(self) -> Iterator["Variable"]:
        for a in self.args:
            yield from a.variables()

    def substitute(self, subst: "Substitution") -> "Term":
        if self.is_ground():
            return self
        return FunctionTerm(self.functor, [a.substitute(subst) for a in self.args])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FunctionTerm)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash(("fn", self.functor, self.args))

    def __repr__(self) -> str:
        if self.functor == "cons":
            return _format_list(self)
        if self.functor in ARITH_FUNCTORS and len(self.args) == 2:
            return f"({self.args[0]!r} {self.functor} {self.args[1]!r})"
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.functor}({inner})"


#: Functors treated as arithmetic operators by the evaluator.
ARITH_FUNCTORS = frozenset({"+", "-", "*", "/", "//", "mod", "min", "max", "abs", "neg"})

#: The empty list.
NIL = Constant("nil")

# ---------------------------------------------------------------------------
# Substitutions
# ---------------------------------------------------------------------------


class Substitution(Dict[Variable, Term]):
    """A mapping from variables to terms.

    A plain dict subclass: keys are :class:`Variable`, values are
    :class:`Term`.  ``resolve`` walks binding chains.
    """

    def resolve(self, term: Term) -> Term:
        """Fully apply this substitution to ``term``."""
        return term.substitute(self)

    def extended(self, var: Variable, term: Term) -> "Substitution":
        """Return a copy with one extra binding."""
        new = Substitution(self)
        new[var] = term
        return new


# ---------------------------------------------------------------------------
# List helpers (Example 2: trajectories as lists)
# ---------------------------------------------------------------------------


def make_list(elements: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a cons-list term from ``elements`` (right-folded onto ``tail``)."""
    result = tail
    for el in reversed(list(elements)):
        result = FunctionTerm("cons", (el, result))
    return result


def is_list_term(term: Term) -> bool:
    """True for ``nil`` or any ``cons`` cell."""
    return term == NIL or (isinstance(term, FunctionTerm) and term.functor == "cons")


def list_elements(term: Term) -> List[Term]:
    """Flatten a ground cons-list term into a Python list of terms.

    Raises ``ValueError`` on improper lists (tail that is neither ``nil``
    nor a cons cell).
    """
    out: List[Term] = []
    cur = term
    while cur != NIL:
        if not (isinstance(cur, FunctionTerm) and cur.functor == "cons" and cur.arity == 2):
            raise ValueError(f"not a proper list: {term!r}")
        out.append(cur.args[0])
        cur = cur.args[1]
    return out


def _format_list(term: FunctionTerm) -> str:
    parts: List[str] = []
    cur: Term = term
    while isinstance(cur, FunctionTerm) and cur.functor == "cons" and cur.arity == 2:
        parts.append(repr(cur.args[0]))
        cur = cur.args[1]
    if cur == NIL:
        return "[" + ", ".join(parts) + "]"
    return "[" + ", ".join(parts) + " | " + repr(cur) + "]"


# ---------------------------------------------------------------------------
# Convenience coercion
# ---------------------------------------------------------------------------


def to_term(value) -> Term:
    """Coerce a Python value (or Term) into a Term.

    Strings become constants; to get a variable, pass a :class:`Variable`
    or use the parser.  Tuples/lists become constant tuples (handy for
    coordinates) unless they contain Terms, in which case a cons-list is
    built.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, (list, tuple)) and any(isinstance(v, Term) for v in value):
        return make_list([to_term(v) for v in value])
    if isinstance(value, list):
        return make_list([to_term(v) for v in value])
    if isinstance(value, tuple):
        return Constant(tuple(_freeze(v) for v in value))
    return Constant(value)


def _freeze(value):
    if isinstance(value, Term):
        raise TypeError("cannot embed Term inside constant tuple")
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def term_size(term: Term) -> int:
    """Number of symbols in a term — used by the network byte-cost model."""
    if isinstance(term, FunctionTerm):
        return 1 + sum(term_size(a) for a in term.args)
    return 1
