"""Cost-based join ordering.

Section II-B: "the optimization of deductive programs is largely
embedded in the efficient data storage schemes, in-network
implementation of the join, **join-ordering**, and other query
optimization techniques."

The classic greedy System-R-style heuristic over simple statistics:

* each predicate has an estimated cardinality and per-position distinct
  counts (collected from a sample :class:`Database` or supplied);
* positive subgoals are ordered by smallest *estimated intermediate
  result*: joining a literal whose bound positions (constants or
  variables bound by earlier literals) are most selective first;
* built-ins and negated literals are untouched — :func:`order_body`
  already interleaves them as early as their variables allow.

``optimize_program`` rewrites every rule; both the centralized
evaluators and the distributed compiler consume the reordered rules
transparently (they preserve textual order among positive literals).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .ast import Literal, Program, RelLiteral, Rule
from .eval import Database
from .terms import Variable


class Statistics:
    """Cardinality and distinct-value statistics per predicate."""

    def __init__(self):
        self.cardinality: Dict[str, int] = {}
        self.distinct: Dict[Tuple[str, int], int] = {}

    @classmethod
    def from_database(cls, db: Database) -> "Statistics":
        """Collect statistics from a (sample) database."""
        stats = cls()
        for pred in db.predicates():
            rel = db.relation(pred)
            stats.cardinality[pred] = len(rel)
            arity = max((len(args) for args in rel), default=0)
            for pos in range(arity):
                values = {args[pos] for args in rel if pos < len(args)}
                stats.distinct[(pred, pos)] = len(values)
        return stats

    def set_cardinality(self, pred: str, n: int, distinct: Optional[Dict[int, int]] = None) -> None:
        self.cardinality[pred] = n
        for pos, d in (distinct or {}).items():
            self.distinct[(pred, pos)] = d

    def card(self, pred: str) -> float:
        return float(self.cardinality.get(pred, 1000))

    def distinct_at(self, pred: str, pos: int) -> float:
        d = self.distinct.get((pred, pos))
        if d is None or d <= 0:
            # Heuristic default: a tenth of the cardinality, at least 1.
            return max(1.0, self.card(pred) / 10.0)
        return float(d)


def estimate_extension(
    lit: RelLiteral, bound: Set[Variable], stats: Statistics
) -> float:
    """Estimated number of tuples this literal contributes per current
    intermediate row: cardinality divided by the selectivity of every
    bound position (constant or already-bound variable)."""
    size = stats.card(lit.predicate)
    for pos, arg in enumerate(lit.atom.args):
        arg_vars = [v for v in arg.variables() if not v.is_anonymous]
        is_bound = arg.is_ground() or (
            arg_vars and all(v in bound for v in arg_vars)
        )
        if is_bound:
            size /= stats.distinct_at(lit.predicate, pos)
    return max(size, 0.001)


def order_positive_literals(
    rule: Rule, stats: Statistics
) -> List[RelLiteral]:
    """Greedy smallest-intermediate-first ordering of positive subgoals."""
    remaining = [
        lit for lit in rule.body
        if isinstance(lit, RelLiteral) and not lit.negated
    ]
    ordered: List[RelLiteral] = []
    bound: Set[Variable] = set()
    while remaining:
        best = min(
            remaining,
            key=lambda lit: (estimate_extension(lit, bound, stats),
                             remaining.index(lit)),
        )
        remaining.remove(best)
        ordered.append(best)
        bound.update(v for v in best.variables() if not v.is_anonymous)
    return ordered


def optimize_rule(rule: Rule, stats: Statistics) -> Rule:
    """Reorder the rule's positive subgoals; everything else keeps its
    relative position (and is re-interleaved by ``order_body``)."""
    if rule.has_aggregates or not rule.body:
        return rule
    positives = order_positive_literals(rule, stats)
    it = iter(positives)
    new_body: List[Literal] = []
    for lit in rule.body:
        if isinstance(lit, RelLiteral) and not lit.negated:
            new_body.append(next(it))
        else:
            new_body.append(lit)
    return Rule(rule.head, new_body, rule.aggregates, rule.rule_id)


def optimize_program(program: Program, stats: Statistics) -> Program:
    """Rewrite every rule of ``program`` with cost-based join ordering."""
    out = Program(facts=program.facts)
    for rule in program.rules:
        out.add_rule(optimize_rule(rule, stats))
    return out
