"""Batch-vectorized execution of compiled rule plans.

The tuple-at-a-time executor in :mod:`repro.core.plan` enumerates one
binding at a time through Python-level probe loops.  This module runs
the *same* plans over whole batches at once: the current set of partial
bindings is a struct-of-arrays (one int64 id column per bound variable,
ids from :data:`repro.core.columnar.GLOBAL_INTERNER`), and every step —
equality join, negation, builtin comparison/assignment — is a numpy
kernel over those columns.  Joins probe a relation through a cached
``(sorted ids, row order)`` snapshot per (relation, position, version):
``searchsorted`` yields per-batch-row match ranges which are expanded
into (batch row, relation row) pairs without a Python loop.

A rule is *vectorizable* when every step fits the supported shapes:

* positive/negated relational subgoals whose arguments are constants or
  bare variables (no nested function terms in the pattern);
* builtin comparisons / equality tests / ``=`` assignments over
  arithmetic expression trees of numeric constants and bound variables;
* head arguments that are constants, ground terms, bound variables, or
  arithmetic expressions.

:func:`analyze_plan` decides this once per plan and returns None
otherwise — the caller then uses the tuple executor.  Vectorizable
rules can still bail *at runtime* (:class:`_Fallback`): non-numeric ids
reaching arithmetic, integers beyond float64's exact range (2**53),
``//``/``mod`` operands at or above 2**25, zero divisors, ragged
relations.  Fallback happens before any result is emitted and before
any probe counter is committed, so the tuple executor re-runs the call
with identical semantics (including raising the same errors Python
arithmetic would).

Derived facts and derivations are constructed from the interner's
canonical term instances, so results are equal (as terms) to what
:func:`repro.core.eval.ground_head` builds row by row.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import instrument as _inst
from ..obs import state as _obs
from .builtins import BuiltinRegistry, eval_term, value_to_term
from .columnar import (
    F_FN,
    F_INT,
    F_NUM,
    F_SMALL,
    GLOBAL_INTERNER,
    MAX_EXACT_INT,
    SMALL_INT,
)
from .derivations import CachedFactKey, Derivation
from .plan import _CONST, _VAR, BuiltinStep, RelStep
from .terms import Constant, FunctionTerm, Term, Variable

#: Module-level mirror of the obs counters, always on (cheap) so tests
#: and benchmarks can read vectorization coverage without telemetry.
VECTOR_STATS = {
    "batch_calls": 0,
    "batch_rows": 0,
    "vectorized_steps": 0,
    "fallback_steps": 0,
    "emit_dedup_rows": 0,
}

#: Result batches below this row count skip the id-space head dedup —
#: np.unique's sort costs more than the saved tuple materializations.
_EMIT_DEDUP_MIN_ROWS = 16


class _Fallback(Exception):
    """Raised when a vectorized call must re-run on the tuple executor."""


# ---------------------------------------------------------------------------
# Compile-time analysis
# ---------------------------------------------------------------------------


class _JoinOp:
    __slots__ = (
        "step_idx", "predicate", "negated", "arity",
        "ground_specs", "out_specs", "dup_specs",
    )

    def __init__(self, step_idx, predicate, negated, arity,
                 ground_specs, out_specs, dup_specs):
        self.step_idx = step_idx
        self.predicate = predicate
        self.negated = negated
        self.arity = arity
        #: merged probe columns, pattern order: ("c", pos, id) for
        #: constants, ("v", pos, var) for already-bound variables.
        self.ground_specs = ground_specs
        #: (pos, var) — first occurrences of unbound variables.
        self.out_specs = out_specs
        #: (pos, first_pos) — intra-atom variable repeats: the relation
        #: row must carry equal ids at both positions.
        self.dup_specs = dup_specs


class _TestOp:
    __slots__ = ("name", "negated", "left", "right")

    def __init__(self, name, negated, left, right):
        self.name = name
        self.negated = negated
        self.left = left
        self.right = right


class _AssignOp:
    __slots__ = ("var", "expr")

    def __init__(self, var, expr):
        self.var = var
        self.expr = expr


class BatchProgram:
    """The vectorized form of one CompiledPlan."""

    __slots__ = ("ops", "head")

    def __init__(self, ops, head):
        self.ops = ops
        self.head = head


def _build_expr(term: Term, bound) -> Optional[tuple]:
    """An arithmetic expression tree over numeric constants and bound
    variables, or None when the term does not vectorize."""
    if isinstance(term, Constant):
        v = term.value
        if (
            isinstance(v, (int, float))
            and not isinstance(v, bool)
            and v == v
            and abs(v) <= MAX_EXACT_INT
        ):
            return ("num", v)
        return None
    if isinstance(term, Variable):
        return ("var", term) if term in bound else None
    if isinstance(term, FunctionTerm):
        f = term.functor
        if f in ("abs", "neg"):
            if len(term.args) != 1:
                return None
        elif f in ("+", "-", "*", "/", "//", "mod", "min", "max"):
            if len(term.args) != 2:
                return None
        else:
            return None
        children = []
        for a in term.args:
            child = _build_expr(a, bound)
            if child is None:
                return None
            children.append(child)
        return ("op", f, tuple(children))
    return None


def _analyze_rel(step: RelStep, step_idx: int, bound) -> Optional[_JoinOp]:
    ground: List[tuple] = []
    out: List[tuple] = []
    dups: List[tuple] = []
    seen: Dict[Variable, int] = {}
    for pos, (kind, payload) in enumerate(step.arg_plan):
        if kind == _CONST:
            ground.append(("c", pos, GLOBAL_INTERNER.intern(payload)))
        elif kind == _VAR:
            if payload in bound:
                ground.append(("v", pos, payload))
            elif payload in seen:
                dups.append((pos, seen[payload]))
            else:
                seen[payload] = pos
                if not step.negated:
                    out.append((pos, payload))
                # In a negated subgoal an unbound variable is a free
                # (unconstrained) position — order_body only admits
                # anonymous ones there.
        else:
            return None  # nested term in the pattern
    return _JoinOp(step_idx, step.predicate, step.negated,
                   len(step.arg_plan), ground, out, dups)


_COMPARISONS = ("<", "<=", ">", ">=", "=", "!=")


def _analyze_builtin(literal, bound) -> Optional[object]:
    name = literal.name
    if len(literal.args) != 2 or name not in _COMPARISONS:
        return None
    left, right = literal.args
    if name == "=" and not literal.negated:
        left_vars = set(left.variables())
        right_vars = set(right.variables())
        if not (left_vars <= bound and right_vars <= bound):
            # Assignment form: mirror eval_builtin's dispatch — the
            # unbound side must be a bare variable.
            if isinstance(left, Variable) and left not in bound and right_vars <= bound:
                expr = _build_expr(right, bound)
                return None if expr is None else _AssignOp(left, expr)
            if isinstance(right, Variable) and right not in bound and left_vars <= bound:
                expr = _build_expr(left, bound)
                return None if expr is None else _AssignOp(right, expr)
            return None  # structural unification — tuple path
    le = _build_expr(left, bound)
    re = _build_expr(right, bound)
    if le is None or re is None:
        return None
    return _TestOp(name, literal.negated, le, re)


def analyze_plan(plan) -> Optional[BatchProgram]:
    """The BatchProgram for ``plan``, or None when any step (or the
    head) falls outside the vectorizable shapes."""
    rule = plan.rule
    if rule.has_aggregates:
        return None
    bound: set = set()
    ops: List[object] = []
    for step_idx, step in enumerate(plan.steps):
        if type(step) is BuiltinStep:
            op = _analyze_builtin(step.literal, bound)
            if op is None:
                return None
            ops.append(op)
            if isinstance(op, _AssignOp):
                bound.add(op.var)
            continue
        assert isinstance(step, RelStep)
        op = _analyze_rel(step, step_idx, bound)
        if op is None:
            return None
        ops.append(op)
        if not op.negated:
            bound.update(v for _, v in op.out_specs)
    head: List[tuple] = []
    for arg in rule.head.args:
        if isinstance(arg, Variable):
            if arg not in bound:
                return None
            head.append(("var", arg))
        elif isinstance(arg, Constant):
            head.append(("const", GLOBAL_INTERNER.intern(arg)))
        elif arg.is_ground():
            # Ground function term: may involve registered functions,
            # so normalize at execution time with the live registry.
            head.append(("gconst", arg))
        else:
            expr = _build_expr(arg, bound)
            if expr is None:
                return None
            head.append(("expr", expr))
    return BatchProgram(tuple(ops), tuple(head))


# ---------------------------------------------------------------------------
# Runtime sources
# ---------------------------------------------------------------------------


class _RelSource:
    """Columnar view of a stored Relation."""

    __slots__ = ("rel",)

    def __init__(self, rel):
        self.rel = rel

    @property
    def ragged(self):
        return self.rel.ragged

    @property
    def arity(self):
        return self.rel.arity

    @property
    def live_count(self):
        return len(self.rel)

    @property
    def terms_rows(self):
        return self.rel.terms_rows

    def np_col(self, pos):
        return self.rel.np_column(pos)

    def live_rows(self):
        return self.rel.live_rows()

    def sorted_probe(self, pos):
        return self.rel.sorted_probe(pos)

    def fact_keys(self, pred):
        return self.rel.fact_keys(pred)


class _DeltaSource:
    """Columnar view of one call's semi-naive delta set, built once."""

    __slots__ = ("terms_rows", "arity", "ragged", "_cols", "_sorted", "_keys")

    def __init__(self, rows):
        self.terms_rows = rows
        arities = {len(r) for r in rows}
        self.ragged = len(arities) > 1
        self.arity = arities.pop() if len(arities) == 1 else None
        self._cols: Dict[int, np.ndarray] = {}
        self._sorted: Dict[int, tuple] = {}
        self._keys: Dict[str, list] = {}

    @property
    def live_count(self):
        return len(self.terms_rows)

    def np_col(self, pos):
        col = self._cols.get(pos)
        if col is None:
            intern = GLOBAL_INTERNER.intern
            col = np.fromiter(
                (intern(r[pos]) for r in self.terms_rows),
                dtype=np.int64,
                count=len(self.terms_rows),
            )
            self._cols[pos] = col
        return col

    def live_rows(self):
        return np.arange(len(self.terms_rows), dtype=np.int64)

    def sorted_probe(self, pos):
        cached = self._sorted.get(pos)
        if cached is None:
            vals = self.np_col(pos)
            order = np.argsort(vals, kind="stable")
            cached = (vals[order], order.astype(np.int64))
            self._sorted[pos] = cached
        return cached

    def fact_keys(self, pred):
        keys = self._keys.get(pred)
        if keys is None:
            keys = self._keys[pred] = [
                CachedFactKey((pred, r)) for r in self.terms_rows
            ]
        return keys


# ---------------------------------------------------------------------------
# Runtime execution
# ---------------------------------------------------------------------------


class _State:
    __slots__ = ("n", "cols", "prov", "stats")

    def __init__(self):
        self.n = 1
        self.cols: Dict[Variable, np.ndarray] = {}
        #: one [predicate, source, row-number array] per positive
        #: join, in step order — the provenance columns.
        self.prov: List[list] = []
        self.stats = [0, 0]  # (candidates scanned, rows matched)

    def gather(self, sel):
        """Keep only the batch rows selected by index array ``sel``."""
        self.n = len(sel)
        cols = self.cols
        for v in cols:
            cols[v] = cols[v][sel]
        for entry in self.prov:
            entry[2] = entry[2][sel]


def _check_int_range(res):
    if np.any(np.abs(res) > MAX_EXACT_INT):
        raise _Fallback


def _eval_expr(expr, state):
    """Evaluate an expression tree to (float64 array-or-scalar, is_int).

    is_int mirrors Python's type propagation: int op int stays int
    (except ``/``), anything touching a float is float.  All integer
    intermediates are checked against float64's exact range.
    """
    kind = expr[0]
    if kind == "num":
        v = expr[1]
        return float(v), isinstance(v, int)
    if kind == "var":
        ids = state.cols[expr[1]]
        flags = GLOBAL_INTERNER.flags_of(ids)
        if not (flags & F_NUM).all():
            raise _Fallback
        return GLOBAL_INTERNER.nums_of(ids), bool((flags & F_INT).all())
    f = expr[1]
    children = expr[2]
    a, a_int = _eval_expr(children[0], state)
    if f == "abs":
        return np.abs(a), a_int
    if f == "neg":
        return -a, a_int
    b, b_int = _eval_expr(children[1], state)
    res_int = a_int and b_int
    if f == "+":
        res = a + b
    elif f == "-":
        res = a - b
    elif f == "*":
        res = a * b
    elif f == "/":
        if np.any(b == 0.0):
            raise _Fallback  # tuple path raises ZeroDivisionError
        return a / b, False
    elif f in ("//", "mod"):
        # Exact only for small integers; everything else goes back to
        # Python arithmetic (floor/round edge cases on floats, big ints).
        if not res_int:
            raise _Fallback
        if np.any(np.abs(a) >= SMALL_INT) or np.any(np.abs(b) >= SMALL_INT):
            raise _Fallback
        if np.any(b == 0.0):
            raise _Fallback
        return (np.floor_divide(a, b) if f == "//" else np.mod(a, b)), True
    elif f == "min":
        res = np.minimum(a, b)
    elif f == "max":
        res = np.maximum(a, b)
    else:  # pragma: no cover - analysis admits only the functors above
        raise _Fallback
    if res_int:
        _check_int_range(res)
    return res, res_int


def _count(counters, rel, scans):
    probes_scans = counters.get(id(rel))
    if probes_scans is None:
        probes_scans = counters[id(rel)] = [rel, 0, 0]
    probes_scans[2 if scans else 1] += 1


def _probe_expand(op, src, state):
    """Expand the batch against ``src`` along the ground columns:
    returns (batch row indexes, relation row numbers, candidate count)."""
    specs = op.ground_specs
    kind, pos, payload = specs[0]
    sorted_vals, sorted_rows = src.sorted_probe(pos)
    if kind == "c":
        lo = np.searchsorted(sorted_vals, payload, side="left")
        hi = np.searchsorted(sorted_vals, payload, side="right")
        rows1 = sorted_rows[lo:hi]
        n, m = state.n, hi - lo
        batch_idx = np.repeat(np.arange(n, dtype=np.int64), m)
        rel_rows = np.tile(rows1, n)
        total = n * m
    else:
        keys = state.cols[payload]
        lo = np.searchsorted(sorted_vals, keys, side="left")
        hi = np.searchsorted(sorted_vals, keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        batch_idx = np.repeat(np.arange(state.n, dtype=np.int64), counts)
        starts = np.repeat(lo, counts)
        cum = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        rel_rows = sorted_rows[starts + offsets]
    mask = None
    for kind2, pos2, payload2 in specs[1:]:
        col = src.np_col(pos2)[rel_rows]
        want = payload2 if kind2 == "c" else state.cols[payload2][batch_idx]
        part = col == want
        mask = part if mask is None else (mask & part)
    for pos2, first_pos in op.dup_specs:
        part = src.np_col(pos2)[rel_rows] == src.np_col(first_pos)[rel_rows]
        mask = part if mask is None else (mask & part)
    if mask is not None:
        sel = np.nonzero(mask)[0]
        batch_idx = batch_idx[sel]
        rel_rows = rel_rows[sel]
    return batch_idx, rel_rows, total


def _exec_join(op, src, state, counters, is_delta):
    if src.ragged:
        raise _Fallback
    if src.live_count == 0 or src.arity != op.arity:
        state.n = 0
        return
    if op.ground_specs:
        if not is_delta:
            _count(counters, src.rel, scans=False)
        batch_idx, rel_rows, total = _probe_expand(op, src, state)
    else:
        if not is_delta:
            _count(counters, src.rel, scans=True)
        live = src.live_rows()
        if op.dup_specs:
            keep = np.ones(len(live), dtype=bool)
            for pos, first_pos in op.dup_specs:
                keep &= src.np_col(pos)[live] == src.np_col(first_pos)[live]
            live = live[np.nonzero(keep)[0]]
        n, m = state.n, len(live)
        batch_idx = np.repeat(np.arange(n, dtype=np.int64), m)
        rel_rows = np.tile(live, n)
        total = n * m
    state.stats[0] += total
    state.stats[1] += len(batch_idx)
    state.gather(batch_idx)
    for pos, var in op.out_specs:
        state.cols[var] = src.np_col(pos)[rel_rows]
    state.prov.append([op.predicate, src, rel_rows])
    state.n = len(rel_rows)


def _exec_negation(op, src, state, counters, is_delta):
    if src.ragged:
        raise _Fallback
    if src.live_count == 0 or src.arity != op.arity:
        return  # nothing can match: every batch row survives
    if not op.ground_specs:
        if not is_delta:
            _count(counters, src.rel, scans=True)
        exists = True
        if op.dup_specs:
            live = src.live_rows()
            match = np.ones(len(live), dtype=bool)
            for pos, first_pos in op.dup_specs:
                match &= src.np_col(pos)[live] == src.np_col(first_pos)[live]
            exists = bool(match.any())
        if exists:
            state.n = 0
        return
    if not is_delta:
        _count(counters, src.rel, scans=False)
    batch_idx, _rel_rows, _total = _probe_expand(op, src, state)
    matched = np.zeros(state.n, dtype=bool)
    matched[batch_idx] = True
    keep = np.nonzero(~matched)[0]
    if len(keep) != state.n:
        state.gather(keep)


def _exec_test(op, state):
    left, _li = _eval_expr(op.left, state)
    right, _ri = _eval_expr(op.right, state)
    name = op.name
    if name == "=":
        mask = left == right
    elif name == "!=":
        mask = left != right
    elif name == "<":
        mask = left < right
    elif name == "<=":
        mask = left <= right
    elif name == ">":
        mask = left > right
    else:
        mask = left >= right
    if op.negated:
        mask = np.logical_not(mask)
    if np.ndim(mask) == 0:
        if not bool(mask):
            state.n = 0
        return
    sel = np.nonzero(mask)[0]
    if len(sel) != state.n:
        state.gather(sel)


def _exec_assign(op, state):
    values, is_int = _eval_expr(op.expr, state)
    state.cols[op.var] = GLOBAL_INTERNER.intern_numeric(values, is_int, state.n)


def _materialize_heads(id_cols, terms, n):
    """Head tuples for the batch, deduplicated in id space.

    Result batches are frequently dominated by repeated head rows (a
    join producing the same head binding through many body matches).
    Since every column is already interned, duplicate rows can be
    detected on the integer id matrix with one ``np.unique`` — each
    distinct head is materialized into a tuple exactly once and
    duplicate rows share that object.  Equal ids mean equal terms, so
    the emitted values are unchanged; only the allocation count drops.
    """
    if not id_cols:
        return itertools.repeat((), n)
    arrays = [col for col in id_cols if not isinstance(col, int)]
    if n >= _EMIT_DEDUP_MIN_ROWS and arrays:
        matrix = np.column_stack(arrays)
        uniq, inverse = np.unique(matrix, axis=0, return_inverse=True)
        if len(uniq) < n:
            VECTOR_STATS["emit_dedup_rows"] += n - len(uniq)
            uniq_lists = uniq.T.tolist()
            u = len(uniq)
            cols = []
            vi = 0
            for col in id_cols:
                if isinstance(col, int):
                    cols.append([terms[col]] * u)
                else:
                    cols.append([terms[tid] for tid in uniq_lists[vi]])
                    vi += 1
            uniq_heads = list(zip(*cols))
            return [uniq_heads[i] for i in inverse.tolist()]
    cols = []
    for col in id_cols:
        if isinstance(col, int):
            cols.append([terms[col]] * n)
        else:
            cols.append([terms[tid] for tid in col.tolist()])
    return list(zip(*cols))


def _emit(plan, prog, state, registry):
    """Materialize (head tuple, Derivation) pairs from the final batch.

    Column-at-a-time: head term columns and per-join body-fact-key
    columns are built as flat lists, then zipped row-wise at C speed;
    duplicate head rows are collapsed in id space first (see
    :func:`_materialize_heads`).  Body fact keys come from the sources'
    per-row caches, so duplicate provenance references share one key
    object instead of allocating (and later re-hashing) a fresh
    ``(pred, args)`` tuple per firing.
    """
    interner = GLOBAL_INTERNER
    n = state.n
    terms = interner.terms
    id_cols: List[object] = []  # per head position: int id or id array
    for spec in prog.head:
        kind = spec[0]
        if kind == "var":
            ids = state.cols[spec[1]]
            if (interner.flags_of(ids) & F_FN).any():
                ids = interner.normalize_ids(ids, registry)
            id_cols.append(ids)
        elif kind == "const":
            id_cols.append(int(spec[1]))
        elif kind == "gconst":
            id_cols.append(
                int(interner.intern(value_to_term(eval_term(spec[1], registry))))
            )
        else:  # expr
            values, is_int = _eval_expr(spec[1], state)
            id_cols.append(interner.intern_numeric(values, is_int, n))
    heads = _materialize_heads(id_cols, terms, n)
    body_cols: List[list] = []
    for pred, src, rows in state.prov:
        keys = src.fact_keys(pred)
        body_cols.append([keys[r] for r in rows.tolist()])
    bodies = zip(*body_cols) if body_cols else itertools.repeat((), n)
    rule_id = plan.rule.rule_id if plan.rule.rule_id is not None else -1
    return [
        (head, Derivation(rule_id, body))
        for head, body in zip(heads, bodies)
    ]


def execute_batch(
    plan,
    prog: BatchProgram,
    db,
    registry: BuiltinRegistry,
    delta_pred: Optional[str] = None,
    delta_tuples=None,
    delta_occurrence: Optional[int] = None,
) -> Optional[List[Tuple[tuple, Derivation]]]:
    """Run one vectorized rule call; same contract as
    ``fire_rule`` but materialized.  Returns None on runtime fallback —
    in that case nothing was emitted and no counter was committed, so
    the caller can re-run the call on the tuple executor.
    """
    delta_step = -1
    if delta_pred is not None and delta_occurrence is not None:
        occs = plan.occurrences.get(delta_pred, ())
        if delta_occurrence < len(occs):
            delta_step = occs[delta_occurrence]
    delta_src: Optional[_DeltaSource] = None
    state = _State()
    counters: Dict[int, list] = {}
    ops_run = 0
    try:
        for op in prog.ops:
            ops_run += 1
            if type(op) is _JoinOp:
                if op.step_idx == delta_step:
                    if delta_src is None:
                        delta_src = _DeltaSource(list(delta_tuples or ()))
                    if delta_src.ragged:
                        raise _Fallback
                    src, is_delta = delta_src, True
                else:
                    src, is_delta = _RelSource(db.relation(op.predicate)), False
                if op.negated:
                    _exec_negation(op, src, state, counters, is_delta)
                else:
                    _exec_join(op, src, state, counters, is_delta)
            elif type(op) is _TestOp:
                _exec_test(op, state)
            else:
                _exec_assign(op, state)
            if state.n == 0:
                break
        results = _emit(plan, prog, state, registry) if state.n else []
    except _Fallback:
        VECTOR_STATS["fallback_steps"] += 1
        if _obs.enabled:
            _inst.fallback_steps.inc()
        return None
    for rel, probes, scans in counters.values():
        rel.probes += probes
        rel.scans += scans
    VECTOR_STATS["batch_calls"] += 1
    VECTOR_STATS["batch_rows"] += len(results)
    VECTOR_STATS["vectorized_steps"] += ops_run
    if _obs.enabled:
        _inst.batch_rows.inc(len(results))
        _inst.vectorized_steps.inc(ops_run)
        if state.stats[0]:
            _inst.join_selectivity.labels(rule=plan.label).observe(
                state.stats[1] / state.stats[0]
            )
    return results
