"""Compiled rule plans and the selectivity-aware join executor.

Section II-B frames the framework's optimization story as compilation:
a deductive program is analyzed *once* and turned into an efficient
evaluation plan, rather than re-planned on every rule firing.  This
module is that layer for the centralized engine:

* :func:`order_body` — the greedy subgoal ordering (moved here from
  ``eval.py``; still re-exported there for compatibility);
* :class:`CompiledPlan` — an immutable per-rule plan: the body ordering
  computed once, each literal argument classified at compile time as
  constant / bare variable / complex term, the positive occurrences of
  every predicate precomputed for the semi-naive delta rewriting, and
  an iterative (explicit-stack) join executor that replaces the
  per-call recursive generator the seed engine used;
* :class:`PlanCache` — the shared per-program plan cache the
  evaluators (`SemiNaiveEvaluator`, `XYEvaluator`,
  `IncrementalEvaluator`) all compile through, with hit/miss counters;
* :func:`seed_engine` — a context manager that routes evaluation
  through the original recursive enumerator with eager materialization,
  kept as the reference baseline for differential tests and the E17
  benchmark.

The executor also performs *probe memoization*: within one rule
execution, identical probe patterns against the same subgoal reuse the
matched-row list instead of re-probing the relation index, and the
semi-naive delta occurrence is joined through a transient per-execution
hash index instead of a linear scan per outer row.  Both are safe
because a relation only ever grows during evaluation and anything a
snapshot misses is re-derived from the next round's delta.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..obs import instrument as _inst
from ..obs import state as _obs
from .ast import BuiltinLiteral, Literal, RelLiteral, Rule
from .builtins import (
    BuiltinRegistry,
    DEFAULT_REGISTRY,
    eval_builtin,
    normalize_partial,
)
from .derivations import FactKey
from .errors import ProgramError
from .terms import Constant, FunctionTerm, Substitution, Term, Variable
from .unify import match_sequences

ArgsTuple = Tuple[Term, ...]

_EMPTY_SUBST = Substitution()


def rule_label(rule: Rule) -> str:
    """Stable telemetry label for a rule: head predicate plus id."""
    if rule.rule_id is not None:
        return f"{rule.head.predicate}#r{rule.rule_id}"
    return rule.head.predicate


# ---------------------------------------------------------------------------
# Body ordering (absorbed from eval.py)
# ---------------------------------------------------------------------------


def order_body(rule: Rule) -> List[Literal]:
    """Order subgoals for left-to-right evaluation.

    Greedy: at each step emit any built-in or negated subgoal whose
    variables are already bound (built-ins as early as possible — they
    are cheap local filters), otherwise the next positive relational
    subgoal in textual order.
    """
    pending = list(rule.body)
    ordered: List[Literal] = []
    bound: Set[Variable] = set()

    def ready(lit: Literal) -> bool:
        if isinstance(lit, BuiltinLiteral):
            if lit.name == "=" and not lit.negated and len(lit.args) == 2:
                left, right = lit.args
                left_vars = set(left.variables())
                right_vars = set(right.variables())
                if left_vars <= bound and right_vars <= bound:
                    return True  # pure test
                # Assignment: the unbound side must be a bare variable
                # (arithmetic is not inverted — T1 = T + 1 cannot run
                # until T is bound, even if T1 already is).
                if isinstance(left, Variable) and right_vars <= bound:
                    return True
                if isinstance(right, Variable) and left_vars <= bound:
                    return True
                return False
            return all(v in bound for v in lit.variables())
        if isinstance(lit, RelLiteral) and lit.negated:
            return all(v in bound or v.is_anonymous for v in lit.variables())
        return False

    while pending:
        for lit in pending:
            if ready(lit):
                ordered.append(lit)
                pending.remove(lit)
                bound.update(v for v in lit.variables())
                break
        else:
            for lit in pending:
                if isinstance(lit, RelLiteral) and not lit.negated:
                    ordered.append(lit)
                    pending.remove(lit)
                    bound.update(lit.variables())
                    break
            else:
                raise ProgramError(
                    f"cannot order body of rule {rule!r}: unbound built-in "
                    "or negated subgoal (rule is unsafe?)"
                )
    return ordered


# ---------------------------------------------------------------------------
# Compiled steps
# ---------------------------------------------------------------------------

#: Compile-time argument classes: a ground constant (pre-normalized when
#: registry-independent), a bare variable (substitute, normalize only if
#: the binding is a function term), or a complex term (substitute +
#: normalize every time, exactly like the seed enumerator).
_CONST, _VAR, _COMPLEX = 0, 1, 2


class BuiltinStep:
    """A built-in subgoal: evaluated through :func:`eval_builtin`."""

    __slots__ = ("literal",)

    def __init__(self, literal: BuiltinLiteral):
        self.literal = literal


class RelStep:
    """A relational subgoal with its argument template precompiled."""

    __slots__ = ("literal", "predicate", "negated", "arg_plan")

    def __init__(self, literal: RelLiteral):
        self.literal = literal
        self.predicate = literal.predicate
        self.negated = literal.negated
        plan = []
        for arg in literal.atom.args:
            if isinstance(arg, Constant):
                # Plain constants normalize to themselves regardless of
                # the registry, so fold them once at compile time.
                plan.append((_CONST, normalize_partial(arg)))
            elif isinstance(arg, Variable):
                plan.append((_VAR, arg))
            else:
                plan.append((_COMPLEX, arg))
        self.arg_plan: Tuple[Tuple[int, Term], ...] = tuple(plan)

    def pattern(self, subst: Substitution, registry: BuiltinRegistry) -> ArgsTuple:
        """Instantiate the probe pattern under ``subst`` (normalized the
        same way the seed enumerator normalized it)."""
        out = []
        for kind, payload in self.arg_plan:
            if kind == _CONST:
                out.append(payload)
            elif kind == _VAR:
                term = payload.substitute(subst)
                if isinstance(term, FunctionTerm):
                    term = normalize_partial(term, registry)
                out.append(term)
            else:
                out.append(normalize_partial(payload.substitute(subst), registry))
        return tuple(out)


# ---------------------------------------------------------------------------
# The compiled plan
# ---------------------------------------------------------------------------

#: Sentinel distinguishing "batch analysis not run yet" from "analyzed:
#: not vectorizable" (None).
_BATCH_UNSET = object()


class CompiledPlan:
    """An immutable evaluation plan for one rule.

    The body ordering, argument templates and delta-occurrence positions
    are computed once at compile time; :meth:`execute` runs the join
    with an explicit stack (no recursion) and per-execution probe
    memoization.
    """

    __slots__ = ("rule", "steps", "occurrences", "label", "_batch")

    def __init__(self, rule: Rule, steps: Sequence[object],
                 occurrences: Dict[str, Tuple[int, ...]]):
        self.rule = rule
        self.steps = tuple(steps)
        self.occurrences = occurrences
        self.label = rule_label(rule)
        self._batch = _BATCH_UNSET

    def occurrence_count(self, predicate: str) -> int:
        """Positive occurrences of ``predicate`` in the ordered body —
        the number of semi-naive delta variants of this rule."""
        return len(self.occurrences.get(predicate, ()))

    def batch_program(self):
        """The vectorized form of this plan (see
        :func:`repro.core.vector.analyze_plan`), or None when the rule
        cannot be batch-executed.  Analyzed once, lazily — a benign
        race recomputes the same immutable value."""
        program = self._batch
        if program is _BATCH_UNSET:
            from .vector import analyze_plan

            program = self._batch = analyze_plan(self)
        return program

    # -- execution -------------------------------------------------------

    def execute(
        self,
        db,
        registry: BuiltinRegistry,
        delta_pred: Optional[str] = None,
        delta_tuples: Optional[Set[ArgsTuple]] = None,
        delta_occurrence: Optional[int] = None,
        initial_subst: Optional[Substitution] = None,
    ) -> Iterator[Tuple[Substitution, List[FactKey]]]:
        """Enumerate satisfying substitutions of the rule body.

        Same contract as the seed ``enumerate_rule``: when
        ``delta_pred`` is given, the ``delta_occurrence``-th positive
        occurrence of that predicate ranges over ``delta_tuples``
        instead of the stored relation.  Yields the substitution and the
        list of positive facts used (the derivation).
        """
        steps = self.steps
        n = len(steps)
        base = Substitution(initial_subst) if initial_subst else Substitution()
        if n == 0:
            yield base, []
            return
        delta_step = -1
        if delta_pred is not None and delta_occurrence is not None:
            occs = self.occurrences.get(delta_pred, ())
            if delta_occurrence < len(occs):
                delta_step = occs[delta_occurrence]
        # Per-execution caches: probe-pattern -> matched rows, plus the
        # transient hash index over the delta tuples.  stats counts
        # (candidate rows scanned, rows matched) for the selectivity
        # histogram.
        memo: Dict[object, object] = {}
        stats = [0, 0]
        used: List[FactKey] = []
        iters: List[Optional[Iterator]] = [None] * n
        pushed = [False] * n
        depth = 0
        last = n - 1
        iters[0] = self._step_results(
            0, base, db, registry, memo, delta_step, delta_tuples, stats
        )
        try:
            while depth >= 0:
                item = next(iters[depth], None)
                if pushed[depth]:
                    used.pop()
                    pushed[depth] = False
                if item is None:
                    iters[depth] = None
                    depth -= 1
                    continue
                s2, fact = item
                if fact is not None:
                    used.append(fact)
                    pushed[depth] = True
                if depth == last:
                    yield s2, list(used)
                    continue
                depth += 1
                iters[depth] = self._step_results(
                    depth, s2, db, registry, memo, delta_step, delta_tuples, stats
                )
                pushed[depth] = False
        finally:
            if _obs.enabled and stats[0]:
                _inst.join_selectivity.labels(rule=self.label).observe(
                    stats[1] / stats[0]
                )

    def _step_results(
        self, idx, subst, db, registry, memo, delta_step, delta_tuples, stats
    ) -> Iterator[Tuple[Substitution, Optional[FactKey]]]:
        step = self.steps[idx]
        if type(step) is BuiltinStep:
            return (
                (s2, None) for s2 in eval_builtin(step.literal, subst, registry)
            )
        pattern = step.pattern(subst, registry)
        if step.negated:
            return self._negation_result(step, idx, pattern, subst, db, memo)
        if idx == delta_step:
            matches = self._delta_matches(idx, pattern, delta_tuples, memo, stats)
        else:
            matches = self._relation_matches(step, idx, pattern, db, memo, stats)
        return self._bind_matches(matches, subst, step.predicate)

    @staticmethod
    def _bind_matches(matches, subst, predicate):
        for row, bindings in matches:
            s2 = Substitution(subst)
            if bindings:
                s2.update(bindings)
            yield s2, (predicate, row)

    def _relation_matches(self, step, idx, pattern, db, memo, stats):
        """Matched (row, bindings) pairs for a positive stored subgoal,
        memoized per probe pattern and snapshotted (safe to consume
        while the caller streams new facts into the relation)."""
        key = (idx, pattern)
        cached = memo.get(key)
        if cached is not None:
            return cached
        rel = db.relation(step.predicate)
        bound = [(pos, t) for pos, t in enumerate(pattern) if t.is_ground()]
        if len(bound) == len(pattern):
            # Fully ground: a point lookup — counts as one probe (per
            # distinct pattern, thanks to the memo) but touches no bucket.
            rel.probes += 1
            out: Tuple = ((pattern, None),) if pattern in rel else ()
            stats[0] += 1
            stats[1] += len(out)
        else:
            if bound:
                rows = rel.lookup(bound)
            else:
                rows = rel.scan()
            matched = []
            for row in rows:
                bindings = match_sequences(pattern, row, _EMPTY_SUBST)
                if bindings is not None:
                    matched.append((row, bindings))
            stats[0] += len(rows)
            stats[1] += len(matched)
            out = tuple(matched)
        memo[key] = out
        return out

    def _delta_matches(self, idx, pattern, delta_tuples, memo, stats):
        """Matched (row, bindings) pairs against the delta set, joined
        through a transient per-execution hash index on the first
        runtime-ground pattern position."""
        key = ("d", idx, pattern)
        cached = memo.get(key)
        if cached is not None:
            return cached
        rows: Iterable[ArgsTuple] = delta_tuples or ()
        probe_pos = -1
        for pos, term in enumerate(pattern):
            if term.is_ground():
                probe_pos = pos
                break
        if probe_pos >= 0:
            index_key = ("di", idx, probe_pos)
            index = memo.get(index_key)
            if index is None:
                index = {}
                for row in rows:
                    if probe_pos < len(row):
                        index.setdefault(row[probe_pos], []).append(row)
                memo[index_key] = index
            rows = index.get(pattern[probe_pos], ())
        matched = []
        scanned = 0
        for row in rows:
            scanned += 1
            bindings = match_sequences(pattern, row, _EMPTY_SUBST)
            if bindings is not None:
                matched.append((row, bindings))
        stats[0] += scanned
        stats[1] += len(matched)
        out = tuple(matched)
        memo[key] = out
        return out

    def _negation_result(self, step, idx, pattern, subst, db, memo):
        key = ("n", idx, pattern)
        exists = memo.get(key)
        if exists is None:
            rel = db.relation(step.predicate)
            bound = [(pos, t) for pos, t in enumerate(pattern) if t.is_ground()]
            if len(bound) == len(pattern):
                rel.probes += 1
                exists = pattern in rel
            elif bound:
                exists = any(
                    match_sequences(pattern, row, _EMPTY_SUBST) is not None
                    for row in rel.lookup(bound)
                )
            else:
                exists = any(
                    match_sequences(pattern, row, _EMPTY_SUBST) is not None
                    for row in rel.scan()
                )
            memo[key] = exists
        if exists:
            return iter(())
        return iter(((subst, None),))


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_rule(rule: Rule, stats=None) -> CompiledPlan:
    """Compile ``rule`` into a :class:`CompiledPlan`.

    When ``stats`` (a :class:`repro.core.optimizer.Statistics`) is
    given, positive subgoals are first reordered by the cost-based
    optimizer; either way the greedy :func:`order_body` interleaving of
    built-ins and negation runs on top.
    """
    if stats is not None:
        from .optimizer import optimize_rule

        rule = optimize_rule(rule, stats)
    ordered = order_body(rule)
    steps: List[object] = []
    occurrences: Dict[str, List[int]] = {}
    for i, lit in enumerate(ordered):
        if isinstance(lit, BuiltinLiteral):
            steps.append(BuiltinStep(lit))
        else:
            assert isinstance(lit, RelLiteral)
            steps.append(RelStep(lit))
            if not lit.negated:
                occurrences.setdefault(lit.predicate, []).append(i)
    return CompiledPlan(
        rule, steps, {p: tuple(ix) for p, ix in occurrences.items()}
    )


class PlanCache:
    """Shared cache of compiled plans, keyed by (rule, rule_id).

    Rules are immutable and hashable, so the rule object itself is a
    sound cache key; ``rule_id`` is added because two textually equal
    rules with different ids must keep distinct derivation labels.
    Plans compiled against optimizer statistics are keyed by the
    statistics object's identity — call :meth:`invalidate` after
    refreshing statistics in place.

    **Namespaces** (multi-tenant serving): ``namespace=`` partitions
    the key space.  Tenants that compile identical rules under the same
    namespace share one CompiledPlan; a tenant whose compilation
    context differs (e.g. different safety annotations) passes a
    distinct namespace and never collides with a same-text rule
    compiled under another.  ``namespace=None`` is the default
    (single-tenant) namespace.

    The cache is thread-safe: :class:`~repro.serve.server.QueryServer`
    admits tenants concurrently, so lookup/compile/insert runs under a
    lock (compilation is cheap relative to evaluation, so holding the
    lock across ``compile_rule`` keeps every miss compiled exactly
    once).
    """

    def __init__(self, max_size: int = 4096):
        self.max_size = max_size
        self._plans: Dict[object, CompiledPlan] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, rule: Rule, stats=None, namespace: Optional[str] = None) -> CompiledPlan:
        key = (
            (rule, rule.rule_id)
            if stats is None
            else (rule, rule.rule_id, id(stats))
        )
        if namespace is not None:
            key = (namespace, key)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                if _obs.enabled:
                    _inst.plan_cache_hits.inc()
                return plan
            self.misses += 1
            if _obs.enabled:
                _inst.plan_cache_misses.inc()
            plan = compile_rule(rule, stats=stats)
            if len(self._plans) >= self.max_size:
                # FIFO eviction: drop the oldest insertion.
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan
            return plan

    def namespace(self, tag: str) -> "PlanNamespace":
        """A view of this cache bound to one namespace tag."""
        return PlanNamespace(self, tag)

    def invalidate(self, rule: Optional[Rule] = None) -> None:
        """Drop cached plans — all of them, or every variant of one
        rule (across every namespace)."""
        with self._lock:
            if rule is None:
                self._plans.clear()
                return
            stale = [
                key for key in self._plans
                if self._rule_of(key) == (rule, rule.rule_id)
            ]
            for key in stale:
                del self._plans[key]

    @staticmethod
    def _rule_of(key) -> tuple:
        # Namespaced keys nest the plain key one level down.
        if len(key) == 2 and isinstance(key[0], str):
            key = key[1]
        return (key[0], key[1])

    def clear(self) -> None:
        self.invalidate()
        self.hits = 0
        self.misses = 0


class PlanNamespace:
    """One namespace of a shared :class:`PlanCache` — what a tenant
    session compiles through.  Same-rule lookups inside one namespace
    share plans; different namespaces never collide."""

    __slots__ = ("cache", "tag")

    def __init__(self, cache: PlanCache, tag: str):
        self.cache = cache
        self.tag = tag

    def get(self, rule: Rule, stats=None) -> CompiledPlan:
        return self.cache.get(rule, stats=stats, namespace=self.tag)


#: The process-wide cache every evaluator compiles through.
GLOBAL_PLAN_CACHE = PlanCache()


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------
#
# Three engines share the same semantics (identical derived facts and
# derivations):
#
# * ``columnar`` (default) — compiled plans, with vectorizable rules
#   executed batch-at-a-time by :mod:`repro.core.vector` and everything
#   else on the tuple executor;
# * ``tuple``  — compiled plans, tuple-at-a-time executor only;
# * ``seed``   — the original recursive enumerator with eager per-rule
#   materialization, kept as the reference oracle for differential
#   tests and benchmark baselines.
#
# The default can be overridden with the REPRO_ENGINE environment
# variable (CI runs the core suite once with REPRO_ENGINE=seed so the
# oracle path cannot rot).

ENGINES = ("columnar", "tuple", "seed")

_engine = os.environ.get("REPRO_ENGINE", "columnar")
if _engine not in ENGINES:
    raise ValueError(
        f"REPRO_ENGINE={_engine!r} is not one of {ENGINES}"
    )


def engine_mode() -> str:
    """The currently selected engine name."""
    return _engine


def seed_mode() -> bool:
    """True while evaluation is pinned to the seed recursive engine."""
    return _engine == "seed"


@contextmanager
def use_engine(name: str):
    """Pin evaluation to one engine for the duration of the block."""
    global _engine
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    previous = _engine
    _engine = name
    try:
        yield
    finally:
        _engine = previous


def seed_engine():
    """Route evaluation through the original recursive enumerator with
    eager per-rule materialization — the pre-plan reference engine, kept
    for differential tests and benchmark baselines."""
    return use_engine("seed")
