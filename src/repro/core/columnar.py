"""Global term interning for columnar fact storage.

The columnar evaluation path (see :mod:`repro.core.vector`) represents
facts as rows of dense integer ids instead of tuples of Term objects.
This module owns the process-wide :class:`Interner` that maps every
distinct ground term to one id, together with the per-id metadata the
numpy join/filter kernels need:

* ``nums`` — the term's numeric payload as a float64 (when numeric);
* ``flags`` — F_NUM (numeric constant), F_INT (integer payload),
  F_SMALL (|value| < 2**25, safe for vectorized ``//``/``mod``),
  F_FN (function term, needs normalization before head emission).

Id equality coincides with term equality: the id table is keyed by the
terms themselves, so ``Constant(2)`` and ``Constant(2.0)`` — equal
terms — share one id, exactly like they collide in the set-based store
the columnar relation replaces.  The numeric metadata of an id is taken
from the *first* term interned for it; since relations also keep the
first-added term instance as the canonical row value, the vectorized
arithmetic sees the same payloads the tuple-at-a-time engine binds.
(Corner case: ``Constant(True) == Constant(1)``, so a bool interned
after the int inherits the numeric flags.  The set-based store conflates
the two identically; programs comparing bools against ints were already
outside the exact-arithmetic contract.)

Thread safety: the hot path is a plain dict hit; misses take a lock so
concurrent tenants (the serving layer) intern each term exactly once.
Ids are append-only for the life of the process — relations, caches and
sort orders may hold them indefinitely.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from .builtins import BuiltinRegistry, eval_term, value_to_term
from .terms import Constant, FunctionTerm, Term

#: Flag bits (see module docstring).
F_NUM = 1
F_INT = 2
F_FN = 4
F_SMALL = 8

#: Integers above this are not exactly representable as float64, so the
#: vectorized kernels refuse them (the tuple engine's exact Python
#: arithmetic takes over).
MAX_EXACT_INT = 2 ** 53

#: Magnitude bound under which float64 ``//`` and ``mod`` agree with
#: Python integer semantics with room to spare.
SMALL_INT = 2 ** 25


class Interner:
    """Bidirectional Term <-> dense-id table with numeric metadata."""

    def __init__(self, initial_capacity: int = 1024):
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self._nums = np.zeros(initial_capacity, dtype=np.float64)
        self._flags = np.zeros(initial_capacity, dtype=np.uint8)
        #: numeric payload -> id of the first term interned with it;
        #: lets the kernels wrap computed numbers back into ids without
        #: building Constant objects per row.
        self._num_ids: Dict[float, int] = {}
        #: (id, id(registry)) -> id of the normalized term, for function
        #: terms flowing into rule heads.
        self._norm: Dict[Tuple[int, int], int] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._terms)

    # -- interning -------------------------------------------------------

    def intern(self, term: Term) -> int:
        """Return the id of ``term``, assigning a fresh one on first use."""
        tid = self._ids.get(term)
        if tid is not None:
            return tid
        with self._lock:
            tid = self._ids.get(term)
            if tid is not None:
                return tid
            tid = len(self._terms)
            if tid >= len(self._nums):
                self._grow(tid + 1)
            flags = 0
            num = 0.0
            if isinstance(term, FunctionTerm):
                flags = F_FN
            elif isinstance(term, Constant):
                v = term.value
                if (
                    isinstance(v, (int, float))
                    and not isinstance(v, bool)
                    and v == v  # not NaN
                    and abs(v) <= MAX_EXACT_INT
                ):
                    flags = F_NUM
                    num = float(v)
                    if isinstance(v, int):
                        flags |= F_INT
                    if abs(v) < SMALL_INT:
                        flags |= F_SMALL
                    self._num_ids.setdefault(num, tid)
            self._terms.append(term)
            self._nums[tid] = num
            self._flags[tid] = flags
            self._ids[term] = tid
            return tid

    def get(self, term: Term) -> Optional[int]:
        """The id of ``term`` if it has ever been interned, else None."""
        return self._ids.get(term)

    def term(self, tid: int) -> Term:
        """The canonical (first-interned) term for ``tid``."""
        return self._terms[tid]

    @property
    def terms(self) -> List[Term]:
        """The id -> term list (append-only; safe to index directly)."""
        return self._terms

    def _grow(self, need: int) -> None:
        cap = len(self._nums)
        while cap < need:
            cap *= 2
        nums = np.zeros(cap, dtype=np.float64)
        nums[: len(self._terms)] = self._nums[: len(self._terms)]
        flags = np.zeros(cap, dtype=np.uint8)
        flags[: len(self._terms)] = self._flags[: len(self._terms)]
        # Old arrays stay valid for concurrent readers; swap atomically.
        self._nums = nums
        self._flags = flags

    # -- bulk kernels ----------------------------------------------------

    def flags_of(self, ids: np.ndarray) -> np.ndarray:
        """Flag bytes for an id array (a gathered copy)."""
        return self._flags[ids]

    def nums_of(self, ids: np.ndarray) -> np.ndarray:
        """Numeric payloads for an id array (a gathered copy)."""
        return self._nums[ids]

    def intern_numeric(self, values, is_int: bool, n: int) -> np.ndarray:
        """Ids for a batch of computed numeric values.

        ``values`` is a float64 array of length ``n`` or a Python
        scalar; ``is_int`` says the whole batch carries integer-typed
        results (the kernels track int-ness per expression, mirroring
        Python's int/float propagation).
        """
        if not isinstance(values, np.ndarray):
            tid = self._intern_value(float(values), is_int)
            return np.full(n, tid, dtype=np.int64)
        uniq, inverse = np.unique(values, return_inverse=True)
        ids = np.empty(len(uniq), dtype=np.int64)
        for j, v in enumerate(uniq.tolist()):
            ids[j] = self._intern_value(v, is_int)
        return ids[inverse]

    def _intern_value(self, v: float, is_int: bool) -> int:
        tid = self._num_ids.get(v)
        if tid is not None:
            return tid
        return self.intern(Constant(int(v) if is_int else v))

    def normalize_ids(self, ids: np.ndarray, registry: BuiltinRegistry) -> np.ndarray:
        """Map function-term ids to the ids of their normalized forms.

        Mirrors what :func:`repro.core.eval.ground_head` does per row —
        ``value_to_term(eval_term(t, registry))`` — but computed once per
        distinct id and cached per registry identity.  Ids without the
        F_FN flag map to themselves.
        """
        uniq = np.unique(ids)
        fn_mask = (self._flags[uniq] & F_FN) != 0
        if not fn_mask.any():
            return ids
        rkey = id(registry)
        mapped = uniq.copy()
        changed = False
        for j in np.nonzero(fn_mask)[0].tolist():
            tid = int(uniq[j])
            nid = self._norm.get((tid, rkey))
            if nid is None:
                nid = self.intern(value_to_term(eval_term(self._terms[tid], registry)))
                self._norm[(tid, rkey)] = nid
            if nid != tid:
                mapped[j] = nid
                changed = True
        if not changed:
            return ids
        return mapped[np.searchsorted(uniq, ids)]


#: The process-wide interner every relation and kernel shares.
GLOBAL_INTERNER = Interner()
