"""Safety analysis for rules.

A rule is *safe* when every variable appearing in it can be bound by the
time it is needed: each (non-anonymous) variable must occur in a
non-negated relational subgoal (Section IV-B, footnote 3), possibly via
a chain of assignments ``V = expr`` whose right-hand sides are already
safe (this is how ``D1 = D + 1`` binds the head stage variable in the
shortest-path programs).

Anonymous variables are permitted anywhere except the head: in a
negated subgoal they act as existential wildcards, matching the paper's
use of ``NOT H'(y, d+1)`` style subgoals with don't-care positions.
"""

from __future__ import annotations

from typing import Set

from .ast import BuiltinLiteral, Program, RelLiteral, Rule
from .errors import SafetyError
from .terms import Variable


def safe_variables(rule: Rule) -> Set[Variable]:
    """Compute the set of variables bound by positive subgoals and
    assignment chains."""
    safe: Set[Variable] = set()
    for lit in rule.positive_literals():
        safe.update(lit.variables())
    # Assignments can extend the safe set; iterate to a fixpoint since
    # chains like D1 = D + 1, D2 = D1 * 2 bind transitively.
    changed = True
    while changed:
        changed = False
        for lit in rule.builtin_literals():
            if lit.name != "=" or lit.negated or len(lit.args) != 2:
                continue
            left, right = lit.args
            for target, source in ((left, right), (right, left)):
                if isinstance(target, Variable) and target not in safe:
                    if all(v in safe for v in source.variables()):
                        safe.add(target)
                        changed = True
    return safe


def check_rule_safety(rule: Rule) -> None:
    """Raise :class:`SafetyError` if ``rule`` is unsafe."""
    safe = safe_variables(rule)

    aggregate_positions = {spec.position for spec in rule.aggregates}
    for pos, arg in enumerate(rule.head.args):
        if pos in aggregate_positions:
            continue  # placeholder variable filled in by the aggregate
        for var in arg.variables():
            if var.is_anonymous:
                raise SafetyError(
                    f"anonymous variable in head of rule {rule!r}"
                )
            if var not in safe:
                raise SafetyError(
                    f"head variable {var!r} not bound by a positive subgoal "
                    f"in rule {rule!r}"
                )
    for spec in rule.aggregates:
        if spec.var is not None and spec.var not in safe:
            raise SafetyError(
                f"aggregated variable {spec.var!r} not bound by a positive "
                f"subgoal in rule {rule!r}"
            )

    for lit in rule.body:
        if isinstance(lit, RelLiteral) and lit.negated:
            for var in lit.variables():
                if not var.is_anonymous and var not in safe:
                    raise SafetyError(
                        f"variable {var!r} of negated subgoal {lit!r} not "
                        f"bound by a positive subgoal in rule {rule!r}"
                    )
        elif isinstance(lit, BuiltinLiteral):
            for var in lit.variables():
                if not var.is_anonymous and var not in safe:
                    raise SafetyError(
                        f"variable {var!r} of built-in {lit!r} never bound "
                        f"in rule {rule!r}"
                    )


def check_program_safety(program: Program) -> None:
    """Check every rule of ``program``; raises on the first unsafe rule."""
    for rule in program.rules:
        check_rule_safety(rule)
