"""Exception hierarchy for the deductive framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParseError(ReproError):
    """Raised on malformed program text.

    Carries the line/column of the offending token when available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class ProgramError(ReproError):
    """Raised on structurally invalid programs (bad arities, unknown
    aggregates, non-ground facts, ...)."""


class SafetyError(ProgramError):
    """Raised when a rule violates the safety condition: every variable
    must occur in a non-negated relational subgoal (Section IV-B)."""


class StratificationError(ProgramError):
    """Raised when a program mixes recursion and negation in a way none
    of the supported evaluation classes (stratified, XY-stratified,
    locally non-recursive) can handle."""


class EvaluationError(ReproError):
    """Raised when evaluation fails, e.g. a built-in receives unbound
    arguments it cannot handle."""


class BuiltinError(EvaluationError):
    """Raised by built-in predicates/functions on bad arguments."""


class NetworkError(ReproError):
    """Raised by the sensor-network simulator on invalid operations
    (sending to a non-neighbor, unknown node ids, ...)."""


class PlanError(ReproError):
    """Raised by the distributed compiler when a program cannot be
    translated to an in-network plan."""
