"""Built-in predicates and functions.

The framework embeds local arithmetic computations (signal processing,
distance computations, trajectory geometry, ...) in *built-ins* written
in procedural code (Section II-B).  Built-ins are evaluated locally at a
node once their arguments are bound, so they never affect the
communication cost of the translated distributed code.

Two kinds are supported:

* **functions** — appear inside terms and return a value, e.g.
  ``dist(L1, L2)``;
* **predicates** — appear as subgoals and return a truth value, e.g.
  ``close(R1, R2)``.

A default registry pre-populates the geometry helpers used by the
paper's examples.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, Optional

from .ast import BuiltinLiteral
from .errors import BuiltinError, EvaluationError
from .terms import (
    ARITH_FUNCTORS,
    Constant,
    FunctionTerm,
    NIL,
    Substitution,
    Term,
    Variable,
    is_list_term,
    list_elements,
)


class BuiltinRegistry:
    """Registry of user/system built-in functions and predicates."""

    def __init__(self, include_standard: bool = True):
        self._functions: Dict[str, Callable[..., Any]] = {}
        self._predicates: Dict[str, Callable[..., bool]] = {}
        if include_standard:
            register_standard_library(self)

    def register_function(self, name: str, fn: Callable[..., Any]) -> None:
        """Register ``name`` as a term-level function."""
        if name in ARITH_FUNCTORS:
            raise BuiltinError(f"cannot shadow arithmetic functor {name!r}")
        self._functions[name] = fn

    def register_predicate(self, name: str, fn: Callable[..., bool]) -> None:
        """Register ``name`` as a boolean subgoal predicate."""
        self._predicates[name] = fn

    def function(self, name: str) -> Optional[Callable[..., Any]]:
        return self._functions.get(name)

    def predicate(self, name: str) -> Optional[Callable[..., bool]]:
        return self._predicates.get(name)

    def has_predicate(self, name: str) -> bool:
        return name in self._predicates

    def copy(self) -> "BuiltinRegistry":
        clone = BuiltinRegistry(include_standard=False)
        clone._functions.update(self._functions)
        clone._predicates.update(self._predicates)
        return clone


def register_standard_library(registry: BuiltinRegistry) -> None:
    """Install the standard geometry/utility built-ins.  (All named
    module-level functions, never lambdas, so a registry riding inside
    a shard checkpoint pickles.)"""
    registry.register_function("dist", _dist)
    registry.register_function("manhattan", _manhattan)
    registry.register_function("len", _length)
    registry.register_function("first", _first)
    registry.register_function("last", _last)
    registry.register_predicate("true", _true)
    registry.register_predicate("false", _false)


def _coords(value: Any) -> tuple:
    if not isinstance(value, tuple) or len(value) < 2:
        raise BuiltinError(f"expected a coordinate tuple, got {value!r}")
    return value


def _dist(a: Any, b: Any) -> float:
    a, b = _coords(a), _coords(b)
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def _manhattan(a: Any, b: Any) -> float:
    a, b = _coords(a), _coords(b)
    return float(sum(abs(x - y) for x, y in zip(a, b)))


def _length(value: Any) -> int:
    try:
        return len(value)
    except TypeError as exc:
        raise BuiltinError(f"len() of non-sequence {value!r}") from exc


def _first(xs: Any) -> Any:
    return xs[0]


def _last(xs: Any) -> Any:
    return xs[-1]


def _true() -> bool:
    return True


def _false() -> bool:
    return False


#: Shared default registry used when none is supplied.
DEFAULT_REGISTRY = BuiltinRegistry()


# ---------------------------------------------------------------------------
# Term evaluation
# ---------------------------------------------------------------------------

_ARITH_IMPL: Dict[str, Callable[..., Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
    "min": min,
    "max": max,
    "abs": abs,
    "neg": lambda a: -a,
}


def eval_term(term: Term, registry: BuiltinRegistry = DEFAULT_REGISTRY) -> Any:
    """Evaluate a ground term to a Python value.

    Constants evaluate to their payload.  Arithmetic functors and
    registered functions are applied to their evaluated arguments.
    Cons-lists evaluate to Python lists.  Uninterpreted function terms
    evaluate to themselves (symbolic values), so ``=``/``!=`` still work
    on them structurally.
    """
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        raise EvaluationError(f"cannot evaluate unbound variable {term!r}")
    assert isinstance(term, FunctionTerm)
    if term.functor == "cons":
        return [eval_term(el, registry) for el in list_elements(term)]
    args = [eval_term(a, registry) for a in term.args]
    if term.functor in _ARITH_IMPL:
        if not all(isinstance(a, (int, float)) for a in args):
            raise BuiltinError(
                f"arithmetic on non-numeric arguments in {term!r}"
            )
        return _ARITH_IMPL[term.functor](*args)
    fn = registry.function(term.functor)
    if fn is not None:
        return fn(*args)
    # Uninterpreted function symbol: a symbolic value.  Rebuild it from
    # the evaluated arguments so nested arithmetic normalizes, e.g.
    # f(D + 1) with D = 2 becomes f(3).
    return FunctionTerm(term.functor, [value_to_term(a) for a in args])


def value_to_term(value: Any) -> Term:
    """Wrap an evaluated Python value back into a Term for binding."""
    if isinstance(value, Term):
        return value
    if isinstance(value, list):
        from .terms import make_list

        return make_list([value_to_term(v) for v in value])
    if isinstance(value, tuple):
        return Constant(value)
    return Constant(value)


def normalize_partial(term: Term, registry: BuiltinRegistry = DEFAULT_REGISTRY) -> Term:
    """Evaluate the maximal ground subterms of ``term``.

    Used to normalize subgoal patterns before matching them against
    stored tuples: ``hp(Y, D + 1)`` with ``D = 0`` becomes ``hp(Y, 1)``
    so it matches the normalized stored form.  Variables (and subterms
    containing them) are left intact.
    """
    if term.is_ground():
        return value_to_term(eval_term(term, registry))
    if isinstance(term, FunctionTerm):
        return FunctionTerm(
            term.functor, [normalize_partial(a, registry) for a in term.args]
        )
    return term


def _comparable(value: Any) -> Any:
    """Normalize a value for comparison: terms compare structurally."""
    if isinstance(value, Term):
        return ("term", repr(value))
    if isinstance(value, bool):
        return ("bool", value)
    return value


def eval_builtin(
    literal: BuiltinLiteral,
    subst: Substitution,
    registry: BuiltinRegistry = DEFAULT_REGISTRY,
) -> Iterator[Substitution]:
    """Evaluate a built-in literal under ``subst``.

    Yields zero or one extended substitutions.  ``=`` may *bind* a
    variable (assignment, e.g. ``D1 = D + 1``); every other built-in is
    a pure test and requires its variables bound.
    """
    lit = literal.substitute(subst)
    if lit.name == "=" and not lit.negated:
        yield from _eval_assign(lit, subst, registry)
        return
    for arg in lit.args:
        if not arg.is_ground():
            raise EvaluationError(
                f"built-in {literal!r} has unbound arguments under {dict(subst)!r}"
            )
    if lit.is_comparison:
        holds = _eval_comparison(lit, registry)
    else:
        fn = registry.predicate(lit.name)
        if fn is None:
            raise BuiltinError(f"unknown built-in predicate {lit.name!r}")
        holds = bool(fn(*[eval_term(a, registry) for a in lit.args]))
    if holds != lit.negated:
        yield subst


def _eval_assign(
    lit: BuiltinLiteral, subst: Substitution, registry: BuiltinRegistry
) -> Iterator[Substitution]:
    left, right = lit.args
    if isinstance(left, Variable) and right.is_ground():
        yield subst.extended(left, value_to_term(eval_term(right, registry)))
        return
    if isinstance(right, Variable) and left.is_ground():
        yield subst.extended(right, value_to_term(eval_term(left, registry)))
        return
    if left.is_ground() and right.is_ground():
        if _comparable(eval_term(left, registry)) == _comparable(
            eval_term(right, registry)
        ):
            yield subst
        return
    # Structural unification fallback (both sides contain variables).
    from .unify import unify

    result = unify(left, right, subst)
    if result is not None:
        yield result


def _eval_comparison(lit: BuiltinLiteral, registry: BuiltinRegistry) -> bool:
    left = eval_term(lit.args[0], registry)
    right = eval_term(lit.args[1], registry)
    lc, rc = _comparable(left), _comparable(right)
    if lit.name == "=":
        return lc == rc
    if lit.name == "!=":
        return lc != rc
    if isinstance(lc, tuple) or isinstance(rc, tuple):
        raise BuiltinError(
            f"ordered comparison {lit.name!r} on non-numeric values "
            f"{left!r}, {right!r}"
        )
    if lit.name == "<":
        return left < right
    if lit.name == "<=":
        return left <= right
    if lit.name == ">":
        return left > right
    if lit.name == ">=":
        return left >= right
    raise BuiltinError(f"unknown comparison {lit.name!r}")
