"""Annotated (probabilistic) deduction over uncertain facts.

Section II-B's *Extensions* paragraph singles out Probabilistic LP [35]
and Annotated Predicate Logic [29] as specialized logics "useful in the
context of sensor networks ... for reasoning with uncertain
information".  This module provides that extension: every fact carries a
confidence annotation in (0, 1]; a rule derivation's confidence combines
its body confidences with a T-norm, and alternative derivations of the
same fact combine with a T-conorm:

* conjunction (within a derivation): ``product`` (independent evidence)
  or ``min`` (fuzzy/possibilistic);
* disjunction (across derivations): ``max`` (best evidence) or
  ``noisy-or`` (independent corroboration).

Evaluation is a monotone fixpoint on the confidence lattice; recursive
programs converge because confidences are bounded by 1 and updates are
ignored below ``tolerance``.  Negated subgoals use certainty semantics:
``not p(...)`` holds (with factor 1) when no ``p`` fact at or above
``negation_threshold`` matches — stratification is still required.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .ast import Program, RelLiteral
from .builtins import BuiltinRegistry, DEFAULT_REGISTRY, eval_builtin, normalize_partial
from .errors import EvaluationError, ProgramError
from .eval import ArgsTuple, Database, ground_head, order_body
from .safety import check_program_safety
from .stratify import classify
from .terms import Substitution, to_term
from .unify import match_sequences

FactConf = Dict[Tuple[str, ArgsTuple], float]


def _conj_product(values: Iterable[float]) -> float:
    out = 1.0
    for v in values:
        out *= v
    return out


def _conj_min(values: Iterable[float]) -> float:
    return min(values, default=1.0)


def _disj_max(old: float, new: float) -> float:
    return max(old, new)


def _disj_noisy_or(old: float, new: float) -> float:
    return 1.0 - (1.0 - old) * (1.0 - new)


_CONJ = {"product": _conj_product, "min": _conj_min}
_DISJ = {"max": _disj_max, "noisy-or": _disj_noisy_or}


class AnnotatedDatabase:
    """Facts with confidence annotations."""

    def __init__(self):
        self._conf: FactConf = {}
        self._by_pred: Dict[str, List[ArgsTuple]] = {}

    def assert_fact(self, predicate: str, args: Iterable, confidence: float = 1.0) -> None:
        if not 0.0 < confidence <= 1.0:
            raise EvaluationError(f"confidence {confidence} outside (0, 1]")
        key = (predicate, tuple(to_term(a) for a in args))
        previous = self._conf.get(key)
        if previous is None:
            self._by_pred.setdefault(predicate, []).append(key[1])
            self._conf[key] = confidence
        else:
            self._conf[key] = max(previous, confidence)

    def confidence(self, predicate: str, args: Iterable) -> float:
        key = (predicate, tuple(to_term(a) for a in args))
        return self._conf.get(key, 0.0)

    def rows(self, predicate: str) -> Dict[tuple, float]:
        """Value tuples with their confidence."""
        from .builtins import eval_term
        from .eval import _freeze_value

        out = {}
        for args in self._by_pred.get(predicate, ()):
            out[tuple(_freeze_value(eval_term(a)) for a in args)] = self._conf[
                (predicate, args)
            ]
        return out

    def facts(self, predicate: str) -> List[Tuple[ArgsTuple, float]]:
        return [
            (args, self._conf[(predicate, args)])
            for args in self._by_pred.get(predicate, ())
        ]

    def _set(self, predicate: str, args: ArgsTuple, confidence: float) -> None:
        key = (predicate, args)
        if key not in self._conf:
            self._by_pred.setdefault(predicate, []).append(args)
        self._conf[key] = confidence


class AnnotatedEvaluator:
    """Bottom-up fixpoint evaluation with confidence annotations."""

    def __init__(
        self,
        program: Program,
        registry: Optional[BuiltinRegistry] = None,
        conjunction: str = "product",
        disjunction: str = "max",
        negation_threshold: float = 0.0,
        tolerance: float = 1e-6,
        max_rounds: int = 10_000,
    ):
        check_program_safety(program)
        for rule in program.rules:
            if rule.has_aggregates:
                raise ProgramError("annotated evaluation does not support aggregates")
        if conjunction not in _CONJ:
            raise ProgramError(f"unknown conjunction {conjunction!r}")
        if disjunction not in _DISJ:
            raise ProgramError(f"unknown disjunction {disjunction!r}")
        analysis = classify(program)
        if analysis.strata is None:
            raise ProgramError(
                "annotated evaluation requires a stratified program"
            )
        self.program = program
        self.registry = registry or DEFAULT_REGISTRY
        self.conj = _CONJ[conjunction]
        self.disj = _DISJ[disjunction]
        self.negation_threshold = negation_threshold
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self.strata = analysis.strata

    def evaluate(self, db: AnnotatedDatabase) -> AnnotatedDatabase:
        for fact in self.program.facts:
            db.assert_fact(fact.predicate, fact.args, 1.0)
        # Externally asserted confidences: the base every round folds onto
        # (derivations are recombined from scratch each round so that
        # non-idempotent disjunctions like noisy-or count each distinct
        # derivation exactly once).
        base: FactConf = dict(db._conf)
        for stratum in self.strata:
            rules = [r for r in self.program.rules if r.head.predicate in stratum]
            for _round in range(self.max_rounds):
                contributions: Dict[Tuple[str, ArgsTuple], Dict[tuple, float]] = {}
                for rule in rules:
                    for head_args, conf, deriv_key in self._fire(rule, db):
                        key = (rule.head.predicate, head_args)
                        contributions.setdefault(key, {})[deriv_key] = conf
                changed = False
                for key, derivs in contributions.items():
                    value = base.get(key, 0.0)
                    for conf in derivs.values():
                        value = self.disj(value, conf)
                    old = db._conf.get(key, 0.0)
                    if abs(value - old) > self.tolerance and value > 0.0:
                        db._set(key[0], key[1], value)
                        changed = True
                if not changed:
                    break
            else:
                raise EvaluationError(
                    f"annotated fixpoint did not converge in {self.max_rounds} rounds"
                )
        return db

    def _fire(
        self, rule, db: AnnotatedDatabase
    ) -> Iterator[Tuple[ArgsTuple, float, tuple]]:
        ordered = order_body(rule)

        def recurse(idx: int, subst: Substitution, confs: List[float], used: List):
            if idx == len(ordered):
                yield subst, list(confs), tuple(used)
                return
            lit = ordered[idx]
            if isinstance(lit, RelLiteral):
                pattern = tuple(
                    normalize_partial(a.substitute(subst), self.registry)
                    for a in lit.atom.args
                )
                if lit.negated:
                    blocked = any(
                        conf > self.negation_threshold
                        and match_sequences(pattern, args, Substitution()) is not None
                        for args, conf in db.facts(lit.predicate)
                    )
                    if not blocked:
                        yield from recurse(idx + 1, subst, confs, used)
                    return
                for args, conf in list(db.facts(lit.predicate)):
                    bindings = match_sequences(pattern, args, Substitution())
                    if bindings is None:
                        continue
                    s2 = Substitution(subst)
                    s2.update(bindings)
                    confs.append(conf)
                    used.append((lit.predicate, args))
                    yield from recurse(idx + 1, s2, confs, used)
                    confs.pop()
                    used.pop()
            else:
                for s2 in eval_builtin(lit, subst, self.registry):
                    yield from recurse(idx + 1, s2, confs, used)

        rule_id = rule.rule_id if rule.rule_id is not None else -1
        for subst, confs, used in recurse(0, Substitution(), [], []):
            head_args = ground_head(rule, subst, self.registry)
            yield head_args, self.conj(confs), (rule_id, used)


def annotated_evaluate(
    program: Program,
    db: Optional[AnnotatedDatabase] = None,
    **kwargs,
) -> AnnotatedDatabase:
    """Convenience wrapper: evaluate ``program`` over annotated facts."""
    if db is None:
        db = AnnotatedDatabase()
    return AnnotatedEvaluator(program, **kwargs).evaluate(db)
