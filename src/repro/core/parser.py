"""Parser for the deductive rule language.

Concrete syntax (close to the paper's notation)::

    cov(L1, T)  :- veh("enemy", L1, T), veh("friendly", L2, T),
                   dist(L1, L2) <= 50.
    uncov(L, T) :- veh("enemy", L, T), not cov(L, T).

    h(x, Y, D1) :- g(x, Y), h(_, x, D), D1 = D + 1, not hp(Y, D1).

Conventions:

* identifiers starting with an upper-case letter are **variables**;
* ``_`` (alone or as a prefix) is an **anonymous variable** — each
  occurrence is a fresh variable;
* lower-case identifiers are **symbols** (constants) or, when followed
  by ``(...)``, predicate/function applications;
* double-quoted strings and numbers are constants;
* ``[a, b, c]`` and ``[H | T]`` build cons-lists;
* ``not`` (or ``NOT``) negates a subgoal;
* infix comparisons ``= != < <= > >=`` and arithmetic ``+ - * / // mod``
  are built-ins;
* aggregates ``count/sum/min/max/avg`` may appear in rule heads, e.g.
  ``shortest(Y, min(D)) :- path(Y, D).``;
* ``%`` and ``#`` start comments.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

from .ast import (
    AGGREGATE_FUNCTORS,
    AggregateSpec,
    Atom,
    BuiltinLiteral,
    COMPARISON_OPS,
    Literal,
    Program,
    RelLiteral,
    Rule,
)
from .builtins import BuiltinRegistry, DEFAULT_REGISTRY
from .errors import ParseError
from .terms import Constant, FunctionTerm, NIL, Term, Variable, make_list


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


_PUNCT = {
    ":-": "IMPLIES",
    "<=": "OP",
    ">=": "OP",
    "!=": "OP",
    "//": "OP",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ",": "COMMA",
    ".": "DOT",
    "|": "PIPE",
    "=": "OP",
    "<": "OP",
    ">": "OP",
    "+": "OP",
    "-": "OP",
    "*": "OP",
    "/": "OP",
}


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`ParseError` on illegal characters."""
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch in "%#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise ParseError("unterminated string", line, col)
                j += 1
            if j >= n:
                raise ParseError("unterminated string", line, col)
            yield Token("STRING", text[i + 1 : j], line, col)
            col += j - i + 1
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot ends a number only if not followed by a digit
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token("NUMBER", text[i:j], line, col)
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word in ("not", "NOT"):
                yield Token("NOT", word, line, col)
            elif word == "mod":
                yield Token("OP", "mod", line, col)
            else:
                yield Token("IDENT", word, line, col)
            col += j - i
            i = j
            continue
        two = text[i : i + 2]
        if two in _PUNCT:
            yield Token(_PUNCT[two], two, line, col)
            i += 2
            col += 2
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, line, col)
            i += 1
            col += 1
            continue
        raise ParseError(f"illegal character {ch!r}", line, col)
    yield Token("EOF", "", line, col)


class Parser:
    """Recursive-descent parser producing :class:`~repro.core.ast.Program`."""

    def __init__(self, text: str, registry: BuiltinRegistry = DEFAULT_REGISTRY):
        self.tokens: List[Token] = list(tokenize(text))
        self.pos = 0
        self.registry = registry

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.current
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {tok.text or tok.kind!r}",
                tok.line,
                tok.column,
            )
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.current
        if tok.kind == kind and (text is None or tok.text == text):
            return self._advance()
        return None

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.current.kind != "EOF":
            program.add_rule(self.parse_rule())
        program.validate_arities()
        return program

    def parse_rule(self) -> Rule:
        head_atom = self._parse_atom()
        body: List[Literal] = []
        if self._accept("IMPLIES"):
            body.append(self._parse_literal())
            while self._accept("COMMA"):
                body.append(self._parse_literal())
        self._expect("DOT")
        head, aggregates = _extract_aggregates(head_atom)
        return Rule(head, body, aggregates)

    def _parse_literal(self) -> Literal:
        negated = self._accept("NOT") is not None
        # Lookahead: IDENT '(' could be an atom or a function term inside
        # a comparison (e.g. dist(L1, L2) <= 50).  Parse a term first and
        # decide based on what follows.
        term = self._parse_term()
        op_tok = self._accept("OP")
        if op_tok is not None:
            if op_tok.text not in COMPARISON_OPS:
                raise ParseError(
                    f"expected comparison operator, found {op_tok.text!r}",
                    op_tok.line,
                    op_tok.column,
                )
            right = self._parse_term()
            return BuiltinLiteral(op_tok.text, (term, right), negated)
        return self._term_to_literal(term, negated)

    def _term_to_literal(self, term: Term, negated: bool) -> Literal:
        if isinstance(term, FunctionTerm):
            name, args = term.functor, term.args
        elif isinstance(term, Constant) and isinstance(term.value, str):
            name, args = term.value, ()
        else:
            raise ParseError(f"subgoal must be a predicate application, got {term!r}")
        if self.registry.has_predicate(name):
            return BuiltinLiteral(name, args, negated)
        return RelLiteral(Atom(name, args), negated)

    def _parse_atom(self) -> Atom:
        tok = self._expect("IDENT")
        if _is_variable_name(tok.text):
            raise ParseError(
                f"predicate name {tok.text!r} must be lower-case", tok.line, tok.column
            )
        args: List[Term] = []
        if self._accept("LPAREN"):
            if self.current.kind != "RPAREN":
                args.append(self._parse_term())
                while self._accept("COMMA"):
                    args.append(self._parse_term())
            self._expect("RPAREN")
        return Atom(tok.text, args)

    # Terms with arithmetic precedence: additive < multiplicative < primary.

    def _parse_term(self) -> Term:
        left = self._parse_mul()
        while True:
            tok = self.current
            if tok.kind == "OP" and tok.text in ("+", "-"):
                self._advance()
                right = self._parse_mul()
                left = FunctionTerm(tok.text, (left, right))
            else:
                return left

    def _parse_mul(self) -> Term:
        left = self._parse_primary()
        while True:
            tok = self.current
            if tok.kind == "OP" and tok.text in ("*", "/", "//", "mod"):
                self._advance()
                right = self._parse_primary()
                left = FunctionTerm(tok.text, (left, right))
            else:
                return left

    def _parse_primary(self) -> Term:
        tok = self.current
        if tok.kind == "NUMBER":
            self._advance()
            value = float(tok.text) if "." in tok.text else int(tok.text)
            return Constant(value)
        if tok.kind == "STRING":
            self._advance()
            return Constant(tok.text)
        if tok.kind == "OP" and tok.text == "-":
            self._advance()
            inner = self._parse_primary()
            if isinstance(inner, Constant) and isinstance(inner.value, (int, float)):
                return Constant(-inner.value)
            return FunctionTerm("neg", (inner,))
        if tok.kind == "LPAREN":
            self._advance()
            first = self._parse_term()
            if self._accept("COMMA"):
                # Coordinate/tuple literal: (10, 20) — must be ground constants.
                items = [first, self._parse_term()]
                while self._accept("COMMA"):
                    items.append(self._parse_term())
                self._expect("RPAREN")
                return _tuple_constant(items, tok)
            self._expect("RPAREN")
            return first
        if tok.kind == "LBRACKET":
            return self._parse_list()
        if tok.kind == "IDENT":
            self._advance()
            if _is_variable_name(tok.text):
                if tok.text.startswith("_"):
                    return Variable.fresh(tok.text.lstrip("_") or "anon")
                return Variable(tok.text)
            if self._accept("LPAREN"):
                args: List[Term] = []
                if self.current.kind != "RPAREN":
                    args.append(self._parse_term())
                    while self._accept("COMMA"):
                        args.append(self._parse_term())
                self._expect("RPAREN")
                return FunctionTerm(tok.text, args)
            return Constant(tok.text)
        raise ParseError(
            f"unexpected token {tok.text or tok.kind!r}", tok.line, tok.column
        )

    def _parse_list(self) -> Term:
        self._expect("LBRACKET")
        if self._accept("RBRACKET"):
            return NIL
        elements = [self._parse_term()]
        while self._accept("COMMA"):
            elements.append(self._parse_term())
        tail: Term = NIL
        if self._accept("PIPE"):
            tail = self._parse_term()
        self._expect("RBRACKET")
        return make_list(elements, tail)


def _is_variable_name(name: str) -> bool:
    return name[0].isupper() or name[0] == "_"


def _tuple_constant(items: Sequence[Term], tok: Token) -> Term:
    values = []
    for item in items:
        if not isinstance(item, Constant):
            raise ParseError(
                "tuple literals must contain only constants", tok.line, tok.column
            )
        values.append(item.value)
    return Constant(tuple(values))


def _extract_aggregates(atom: Atom) -> Tuple[Atom, Tuple[AggregateSpec, ...]]:
    """Split aggregate applications out of a head atom.

    ``shortest(Y, min(D))`` becomes head ``shortest(Y, _AggV)`` plus
    ``AggregateSpec(position=1, function='min', var=D)``.
    """
    new_args: List[Term] = []
    specs: List[AggregateSpec] = []
    for i, arg in enumerate(atom.args):
        if (
            isinstance(arg, FunctionTerm)
            and arg.functor in AGGREGATE_FUNCTORS
            and arg.arity == 1
        ):
            inner = arg.args[0]
            var: Optional[Variable]
            if isinstance(inner, Variable):
                var = None if inner.is_anonymous else inner
            else:
                raise ParseError(
                    f"aggregate argument must be a variable, got {inner!r}"
                )
            specs.append(AggregateSpec(i, arg.functor, var))
            new_args.append(Variable.fresh("agg"))
        else:
            new_args.append(arg)
    if not specs:
        return atom, ()
    return Atom(atom.predicate, new_args), tuple(specs)


def parse_program(text: str, registry: BuiltinRegistry = DEFAULT_REGISTRY) -> Program:
    """Parse program text into a :class:`Program`."""
    return Parser(text, registry).parse_program()


def parse_rule(text: str, registry: BuiltinRegistry = DEFAULT_REGISTRY) -> Rule:
    """Parse a single rule (must end with ``.``)."""
    parser = Parser(text, registry)
    rule = parser.parse_rule()
    if parser.current.kind != "EOF":
        tok = parser.current
        raise ParseError("trailing input after rule", tok.line, tok.column)
    return rule


def parse_term(text: str) -> Term:
    """Parse a single term — handy in tests and the REPL examples."""
    parser = Parser(text)
    term = parser._parse_term()
    if parser.current.kind != "EOF":
        tok = parser.current
        raise ParseError("trailing input after term", tok.line, tok.column)
    return term


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``veh("enemy", (3, 4), 17)``."""
    parser = Parser(text)
    atom = parser._parse_atom()
    if parser.current.kind != "EOF":
        tok = parser.current
        raise ParseError("trailing input after atom", tok.line, tok.column)
    return atom
