"""Magic-sets transformation.

The system architecture (Section V, Fig. 2) first optimizes the user's
logic program with magic-set transformations before compiling it for
distributed bottom-up evaluation: bottom-up evaluation of the rewritten
program only derives facts relevant to the query bindings, mimicking
the goal-directedness of top-down evaluation.

The implementation is the textbook supplementary-free variant with
left-to-right sideways information passing (SIP): each IDB body literal
is adorned with the bound/free status of its arguments, a *magic*
predicate collects the bound argument values, and every original rule
is guarded by the magic predicate of its head.

Negated and built-in literals pass bindings along but are never adorned
themselves (they must be fully bound by safety anyway).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ast import Atom, BuiltinLiteral, Literal, Program, RelLiteral, Rule
from .errors import ProgramError
from .terms import Term, Variable

Adornment = str  # e.g. "bf" — one char per argument, 'b'ound or 'f'ree


def adorn(atom: Atom, bound_vars: Set[Variable]) -> Adornment:
    """Compute the adornment of ``atom`` given the currently bound vars."""
    chars = []
    for arg in atom.args:
        arg_vars = [v for v in arg.variables() if not v.is_anonymous]
        if arg.is_ground() or (arg_vars and all(v in bound_vars for v in arg_vars)):
            chars.append("b")
        else:
            chars.append("f")
    return "".join(chars)


def adorned_name(predicate: str, adornment: Adornment) -> str:
    return f"{predicate}__{adornment}"


def magic_name(predicate: str, adornment: Adornment) -> str:
    return f"m_{predicate}__{adornment}"


def _bound_args(atom: Atom, adornment: Adornment) -> Tuple[Term, ...]:
    return tuple(
        arg for arg, a in zip(atom.args, adornment) if a == "b"
    )


class MagicTransform:
    """Result of a magic-sets rewriting.

    ``program`` is the rewritten program (including the magic seed
    fact); ``query_predicate`` is the renamed adorned predicate holding
    the answers.
    """

    def __init__(self, program: Program, query_predicate: str, seed: Atom):
        self.program = program
        self.query_predicate = query_predicate
        self.seed = seed

    def __repr__(self) -> str:
        return f"MagicTransform(query={self.query_predicate!r})"


def magic_transform(program: Program, query: Atom) -> MagicTransform:
    """Rewrite ``program`` for the given query atom.

    The query's ground arguments determine the initial adornment; the
    rewriting then propagates adornments through IDB predicates.
    Aggregate rules are not supported (raise :class:`ProgramError`).
    """
    for rule in program.rules:
        if rule.has_aggregates:
            raise ProgramError("magic sets does not support aggregate rules")

    idb = program.idb_predicates()
    if query.predicate not in idb:
        raise ProgramError(
            f"query predicate {query.predicate!r} is not defined by any rule"
        )

    query_adornment = adorn(query, set())
    out = Program()
    done: Set[Tuple[str, Adornment]] = set()
    worklist: List[Tuple[str, Adornment]] = [(query.predicate, query_adornment)]

    while worklist:
        pred, adornment = worklist.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        for rule in program.rules_for(pred):
            _rewrite_rule(rule, adornment, idb, out, done, worklist)

    # Seed: the magic fact carrying the query's bound constants.
    seed = Atom(
        magic_name(query.predicate, query_adornment),
        _bound_args(query, query_adornment),
    )
    if seed.args and not seed.is_ground():
        raise ProgramError(f"query {query!r} has non-ground bound arguments")
    if seed.args:
        out.add_fact(seed)
    else:
        # Fully-free query: magic predicate is 0-ary "true".
        out.add_fact(Atom(magic_name(query.predicate, query_adornment), ()))
    for fact in program.facts:
        out.add_fact(fact)
    return MagicTransform(
        out, adorned_name(query.predicate, query_adornment), seed
    )


def _rewrite_rule(
    rule: Rule,
    head_adornment: Adornment,
    idb: Set[str],
    out: Program,
    done: Set[Tuple[str, Adornment]],
    worklist: List[Tuple[str, Adornment]],
) -> None:
    head = rule.head
    bound: Set[Variable] = set()
    for arg, a in zip(head.args, head_adornment):
        if a == "b":
            bound.update(v for v in arg.variables() if not v.is_anonymous)

    magic_head = Atom(
        magic_name(head.predicate, head_adornment),
        _bound_args(head, head_adornment),
    )
    new_body: List[Literal] = [RelLiteral(magic_head)]
    prefix: List[Literal] = [RelLiteral(magic_head)]

    for lit in rule.body:
        if isinstance(lit, BuiltinLiteral):
            new_body.append(lit)
            prefix.append(lit)
            bound.update(v for v in lit.variables() if not v.is_anonymous)
            continue
        assert isinstance(lit, RelLiteral)
        if lit.predicate not in idb or lit.negated:
            # EDB or negated subgoal: unchanged.  Negated IDB subgoals
            # keep their original (un-adorned) predicate, which the
            # caller must define separately; we conservatively requeue
            # the all-free adornment so the full relation is available.
            if lit.predicate in idb and lit.negated:
                free = "f" * lit.atom.arity
                if (lit.predicate, free) not in done:
                    worklist.append((lit.predicate, free))
                # The full (all-free) relation must be materialized for
                # the anti-join, so seed its magic predicate here.
                out.add_rule(
                    Rule(Atom(magic_name(lit.predicate, free), ()), list(prefix))
                )
                new_body.append(
                    RelLiteral(
                        Atom(adorned_name(lit.predicate, free), lit.atom.args),
                        negated=True,
                    )
                )
            else:
                new_body.append(lit)
            prefix.append(lit)
            bound.update(v for v in lit.variables() if not v.is_anonymous)
            continue

        lit_adornment = adorn(lit.atom, bound)
        if (lit.predicate, lit_adornment) not in done:
            worklist.append((lit.predicate, lit_adornment))
        bound_args = _bound_args(lit.atom, lit_adornment)
        if bound_args or lit_adornment == "":
            # Magic rule: the bound arguments reaching this subgoal.
            out.add_rule(
                Rule(
                    Atom(magic_name(lit.predicate, lit_adornment), bound_args),
                    list(prefix),
                )
            )
        else:
            # All-free subgoal: magic predicate is 0-ary.
            out.add_rule(
                Rule(Atom(magic_name(lit.predicate, lit_adornment), ()), list(prefix))
            )
        adorned_lit = RelLiteral(
            Atom(adorned_name(lit.predicate, lit_adornment), lit.atom.args)
        )
        new_body.append(adorned_lit)
        prefix.append(adorned_lit)
        bound.update(v for v in lit.variables() if not v.is_anonymous)

    out.add_rule(
        Rule(Atom(adorned_name(head.predicate, head_adornment), head.args), new_body)
    )


def magic_evaluate(program: Program, query: Atom, db, registry=None):
    """Convenience: rewrite for ``query``, evaluate bottom-up, and return
    the rows of the adorned query predicate matching the query pattern.

    ``db`` must contain the EDB facts; a fresh working copy is used so
    the input database is untouched.  Returns a set of value tuples.
    """
    from .builtins import DEFAULT_REGISTRY
    from .eval import SemiNaiveEvaluator
    from .unify import match_sequences
    from .terms import Substitution

    registry = registry or DEFAULT_REGISTRY
    transform = magic_transform(program, query)
    work = db.copy()
    SemiNaiveEvaluator(transform.program, registry).evaluate(work)
    rel = work.relation(transform.query_predicate)
    out = set()
    for row in rel:
        if match_sequences(query.args, row, Substitution()) is not None:
            out.add(row)
    return out
