"""Unification and one-way term matching.

The bottom-up evaluator only ever matches a *pattern* (a rule subgoal,
possibly with variables) against *ground* stored tuples — the
"term-matching operator" of Section IV-C — but full unification is also
provided for completeness (magic sets and tests use it).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .terms import Constant, FunctionTerm, Substitution, Term, Variable


def walk(term: Term, subst: Substitution) -> Term:
    """Follow variable bindings in ``subst`` until a non-variable or free
    variable is reached (does not descend into function terms)."""
    while isinstance(term, Variable):
        bound = subst.get(term)
        if bound is None:
            return term
        term = bound
    return term


def occurs_in(var: Variable, term: Term, subst: Substitution) -> bool:
    """Occurs check: does ``var`` appear in ``term`` under ``subst``?"""
    term = walk(term, subst)
    if term == var:
        return True
    if isinstance(term, FunctionTerm):
        return any(occurs_in(var, a, subst) for a in term.args)
    return False


def unify(
    t1: Term,
    t2: Term,
    subst: Optional[Substitution] = None,
    occurs_check: bool = False,
) -> Optional[Substitution]:
    """Unify two terms, returning an extended substitution or ``None``.

    The input substitution is not mutated.
    """
    if subst is None:
        subst = Substitution()
    result = Substitution(subst)
    if _unify_into(t1, t2, result, occurs_check):
        return result
    return None


def _unify_into(t1: Term, t2: Term, subst: Substitution, occurs_check: bool) -> bool:
    t1 = walk(t1, subst)
    t2 = walk(t2, subst)
    if t1 == t2:
        return True
    if isinstance(t1, Variable):
        if occurs_check and occurs_in(t1, t2, subst):
            return False
        subst[t1] = t2
        return True
    if isinstance(t2, Variable):
        if occurs_check and occurs_in(t2, t1, subst):
            return False
        subst[t2] = t1
        return True
    if isinstance(t1, Constant) and isinstance(t2, Constant):
        return t1.value == t2.value
    if isinstance(t1, FunctionTerm) and isinstance(t2, FunctionTerm):
        if t1.functor != t2.functor or t1.arity != t2.arity:
            return False
        return all(
            _unify_into(a1, a2, subst, occurs_check)
            for a1, a2 in zip(t1.args, t2.args)
        )
    return False


def unify_sequences(
    seq1: Sequence[Term],
    seq2: Sequence[Term],
    subst: Optional[Substitution] = None,
    occurs_check: bool = False,
) -> Optional[Substitution]:
    """Unify two equal-length term sequences (e.g. atom argument lists)."""
    if len(seq1) != len(seq2):
        return None
    if subst is None:
        subst = Substitution()
    result = Substitution(subst)
    for a, b in zip(seq1, seq2):
        if not _unify_into(a, b, result, occurs_check):
            return None
    return result


def match(pattern: Term, ground: Term, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """One-way matching: bind variables of ``pattern`` so it equals ``ground``.

    ``ground`` must contain no variables (the common case when joining a
    subgoal against stored ground tuples); variables appearing there are
    treated as constants and never bound.
    """
    if subst is None:
        subst = Substitution()
    result = Substitution(subst)
    if _match_into(pattern, ground, result):
        return result
    return None


def _match_into(pattern: Term, ground: Term, subst: Substitution) -> bool:
    pattern = walk(pattern, subst)
    if isinstance(pattern, Variable):
        subst[pattern] = ground
        return True
    if isinstance(pattern, Constant):
        return isinstance(ground, Constant) and pattern.value == ground.value
    if isinstance(pattern, FunctionTerm):
        return (
            isinstance(ground, FunctionTerm)
            and pattern.functor == ground.functor
            and pattern.arity == ground.arity
            and all(_match_into(p, g, subst) for p, g in zip(pattern.args, ground.args))
        )
    return False


def match_sequences(
    patterns: Sequence[Term],
    grounds: Sequence[Term],
    subst: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """One-way match a sequence of patterns against ground terms."""
    if len(patterns) != len(grounds):
        return None
    if subst is None:
        subst = Substitution()
    result = Substitution(subst)
    for p, g in zip(patterns, grounds):
        if not _match_into(p, g, result):
            return None
    return result
