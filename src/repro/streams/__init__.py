"""Stream model: tuple identity, stream tuples, sliding windows."""

from .tuples import ArgsTuple, StreamTuple, TupleID
from .windows import CountWindow, SlidingWindow, WindowParams

__all__ = [
    "ArgsTuple", "StreamTuple", "TupleID", "CountWindow",
    "SlidingWindow", "WindowParams",
]
