"""Stream tuples and tuple identity.

Definition 2: the *source node* of a tuple is where it was generated (a
derived tuple is generated at its hashed location); the *tuple ID* is
``(source node, generation timestamp)`` with the timestamp read from the
source node's local clock.  Deletions never reuse IDs — a deletion is
recorded as a *deletion timestamp* on the same tuple.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..core.terms import Term, term_size, to_term

ArgsTuple = Tuple[Term, ...]


class TupleID:
    """Unique tuple identity: source node id + local generation timestamp
    (+ a per-node sequence number to disambiguate same-instant tuples)."""

    __slots__ = ("source", "timestamp", "seq")

    def __init__(self, source: int, timestamp: float, seq: int = 0):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "seq", seq)

    def __setattr__(self, name, value):
        raise AttributeError("TupleID is immutable")

    def __reduce__(self):
        # The guard also blocks pickle's slot restore; rebuild through
        # the constructor (tuple ids cross shard-worker boundaries).
        return (TupleID, (self.source, self.timestamp, self.seq))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TupleID)
            and (self.source, self.timestamp, self.seq)
            == (other.source, other.timestamp, other.seq)
        )

    def __lt__(self, other: "TupleID") -> bool:
        return (self.timestamp, self.source, self.seq) < (
            other.timestamp,
            other.source,
            other.seq,
        )

    def __hash__(self) -> int:
        return hash((self.source, self.timestamp, self.seq))

    def __repr__(self) -> str:
        return f"({self.source}@{self.timestamp:.3f}#{self.seq})"


class StreamTuple:
    """A tuple of a data stream: predicate, ground arguments, identity,
    and an optional deletion timestamp (set when the source deletes it;
    replicas record the deletion instead of physically vanishing so that
    in-flight join phases still observe a consistent window,
    Section IV-B)."""

    __slots__ = ("predicate", "args", "tuple_id", "deletion_ts")

    def __init__(
        self,
        predicate: str,
        args: Iterable,
        tuple_id: TupleID,
        deletion_ts: Optional[float] = None,
    ):
        self.predicate = predicate
        self.args: ArgsTuple = tuple(to_term(a) for a in args)
        self.tuple_id = tuple_id
        self.deletion_ts = deletion_ts

    @property
    def generation_ts(self) -> float:
        return self.tuple_id.timestamp

    def is_live_at(self, when: float, window: Optional[float] = None) -> bool:
        """Theorem 3 visibility rule for an update with timestamp ``when``:
        the tuple must have been generated within the window before
        ``when`` and not deleted before ``when``."""
        if self.generation_ts > when:
            return False
        if window is not None and self.generation_ts <= when - window:
            return False
        if self.deletion_ts is not None and self.deletion_ts < when:
            return False
        return True

    def size(self) -> int:
        """Symbol count — input to the byte-cost model."""
        return 2 + sum(term_size(a) for a in self.args)

    def key(self) -> Tuple[str, ArgsTuple]:
        return (self.predicate, self.args)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, StreamTuple)
            and self.predicate == other.predicate
            and self.args == other.args
            and self.tuple_id == other.tuple_id
        )

    def __hash__(self) -> int:
        return hash((self.predicate, self.args, self.tuple_id))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        suffix = f" [del@{self.deletion_ts:.3f}]" if self.deletion_ts is not None else ""
        return f"{self.predicate}({inner}){self.tuple_id!r}{suffix}"
