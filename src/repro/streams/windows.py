"""Time-based sliding windows over data streams.

Sensor data is modeled as unbounded streams; limited memory forces
nodes to keep only a sliding window of recent tuples (Section II-B).
Windows here are time-based: a tuple with generation timestamp ``g``
belongs to the window of time ``T`` when ``T - range < g <= T``.

Expiry follows the paper's storage-time rule (Section IV-B): a replica
may be physically dropped only after

    (tau_s + tau_c) + tau_j + (tau_w + tau_c)

so that every join-computation phase that could still match the tuple
finds it present.  Deleted tuples keep their slot (with a deletion
timestamp) until the same bound passes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.terms import Term
from .tuples import ArgsTuple, StreamTuple, TupleID


class WindowParams:
    """The timing constants of Theorem 3."""

    def __init__(self, window: float, tau_s: float, tau_c: float, tau_j: float):
        self.window = window      # tau_w: sliding-window range
        self.tau_s = tau_s        # storage-phase completion bound
        self.tau_c = tau_c        # max clock skew between two nodes
        self.tau_j = tau_j        # join-phase completion bound

    @property
    def join_delay(self) -> float:
        """Delay between storage-phase start and join-phase start."""
        return self.tau_s + self.tau_c

    @property
    def storage_time(self) -> float:
        """Total replica retention time before physical expiry."""
        return (self.tau_s + self.tau_c) + self.tau_j + (self.window + self.tau_c)

    def __repr__(self) -> str:
        return (
            f"WindowParams(w={self.window}, s={self.tau_s}, "
            f"c={self.tau_c}, j={self.tau_j})"
        )


class SlidingWindow:
    """A sliding window of stream tuples for one predicate at one node.

    Holds both locally generated tuples and replicas received during
    storage phases; supports the timestamp-scoped visibility queries the
    join-computation phase needs.
    """

    def __init__(self, predicate: str, params: WindowParams):
        self.predicate = predicate
        self.params = params
        self._tuples: Dict[TupleID, StreamTuple] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples.values())

    def store(self, tup: StreamTuple) -> bool:
        """Store a tuple/replica; duplicate IDs are ignored (replication
        is idempotent).  Returns True when newly stored."""
        if tup.tuple_id in self._tuples:
            return False
        self._tuples[tup.tuple_id] = tup
        return True

    def mark_deleted(self, tuple_id: TupleID, deletion_ts: float) -> bool:
        """Record a deletion timestamp on a replica (the *removal* of
        Section IV — not a physical delete).  Returns True if found."""
        tup = self._tuples.get(tuple_id)
        if tup is None:
            return False
        if tup.deletion_ts is None or deletion_ts < tup.deletion_ts:
            tup.deletion_ts = deletion_ts
        return True

    def live_at(self, when: float) -> List[StreamTuple]:
        """Tuples visible to an update with timestamp ``when`` (Theorem 3):
        generated in ``(when - tau_w, when]`` and not deleted before
        ``when``."""
        return [
            t for t in self._tuples.values()
            if t.is_live_at(when, self.params.window)
        ]

    def match_live(self, when: float, probe: Callable[[ArgsTuple], bool]) -> List[StreamTuple]:
        """Live tuples whose arguments satisfy ``probe``."""
        return [t for t in self.live_at(when) if probe(t.args)]

    def expire(self, now: float) -> List[StreamTuple]:
        """Drop tuples whose storage time has fully elapsed; returns what
        was dropped (for memory accounting)."""
        horizon = now - self.params.storage_time
        dropped = [
            t for t in self._tuples.values() if t.generation_ts <= horizon
        ]
        for t in dropped:
            del self._tuples[t.tuple_id]
        return dropped

    def get(self, tuple_id: TupleID) -> Optional[StreamTuple]:
        return self._tuples.get(tuple_id)

    def memory_tuples(self) -> int:
        """Resident tuple count — the per-node memory metric of
        Section V."""
        return len(self._tuples)


class CountWindow:
    """A count-based sliding window: the most recent ``capacity`` tuples
    by generation timestamp.

    Section II-B restricts the *in-network* machinery to time-based
    windows and calls the in-network maintenance of other window types
    "a challenge and part of our future work" — the difficulty being
    that which tuples belong to a count window is a global property of
    the stream, not decidable locally from a replica's own timestamps.
    This implementation is therefore for centralized / per-source use:
    a single authority (the source node for its own sub-stream, or a
    central evaluator) observes the full insertion order.
    """

    def __init__(self, predicate: str, capacity: int):
        if capacity < 1:
            raise ValueError("count window capacity must be >= 1")
        self.predicate = predicate
        self.capacity = capacity
        self._tuples: Dict[TupleID, StreamTuple] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples.values())

    def store(self, tup: StreamTuple) -> List[StreamTuple]:
        """Insert a tuple; returns the tuples evicted to stay within
        capacity (oldest generation timestamps first)."""
        if tup.tuple_id in self._tuples:
            return []
        self._tuples[tup.tuple_id] = tup
        evicted: List[StreamTuple] = []
        while len(self._tuples) > self.capacity:
            oldest_id = min(self._tuples, key=lambda tid: tid)
            evicted.append(self._tuples.pop(oldest_id))
        return evicted

    def mark_deleted(self, tuple_id: TupleID, deletion_ts: float) -> bool:
        """Deletion frees a slot immediately (unlike the time window's
        deferred removal — there is no in-flight join phase to protect
        in the centralized setting)."""
        return self._tuples.pop(tuple_id, None) is not None

    def contents(self) -> List[StreamTuple]:
        """Window contents, newest first."""
        return sorted(
            self._tuples.values(),
            key=lambda t: t.tuple_id,
            reverse=True,
        )
